//! The open-loop load generator behind `bravod bench` and the `fig10_server`
//! sweep.
//!
//! **Open-loop** means arrivals are scheduled by a clock, not by completions:
//! each connection computes the instant its next operation *should* start
//! and measures latency from that scheduled instant to completion, so
//! server-side queueing shows up as latency instead of silently throttling
//! the offered load — the service-shaped behaviour closed-loop harnesses
//! (every other driver in this workspace) cannot exhibit. See
//! "coordinated omission" in the latency-measurement literature.
//!
//! Keys are drawn from a power-law approximation of a Zipf distribution
//! (`skew` = the Zipf θ; 0 selects uniform), and the operation mix is
//! `read_ratio` reads — a slice of which are `Scan`s, the long reader
//! sections — with the remainder split evenly across `Put`/`Merge`/`Delete`.
//! With [`LoadConfig::batch`] > 1 each scheduled arrival becomes one
//! `MultiGet`/`WriteBatch` frame of that many point operations, amortizing
//! one server-side shard-lock acquisition over the whole frame.

use std::io;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

use kvstore::BatchOp;

use crate::client::Client;
use crate::protocol::{MAX_BATCH_OPS, MAX_SCAN_LIMIT};

/// One open-loop run: connection count, offered load and mix.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Number of concurrent client connections (one thread each).
    pub connections: usize,
    /// Total offered load across all connections, operations per second.
    pub rate: f64,
    /// Fraction of operations that are reads (`Get` or `Scan`).
    pub read_ratio: f64,
    /// Fraction of *all* operations that are `Scan`s (counted inside
    /// `read_ratio`); scans are the long reader sections.
    pub scan_ratio: f64,
    /// Entry cap per scan.
    pub scan_limit: u32,
    /// Key-space size; keys are drawn from `0..keys`.
    pub keys: u64,
    /// Zipf-like skew θ in `[0, 1)`: 0 = uniform, larger = hotter head.
    pub skew: f64,
    /// Measurement interval.
    pub duration: Duration,
    /// RNG seed (each connection derives its own stream from it).
    pub seed: u64,
    /// Operations per wire frame. `1` (the default) issues the classic
    /// one-op-per-frame mix above; `K > 1` packs each scheduled arrival
    /// into a single `MultiGet` (with probability `read_ratio`) or
    /// `WriteBatch` frame of `K` point operations — scans are skipped in
    /// batched mode — so the server takes one shard-lock acquisition per
    /// frame instead of per key. [`Self::rate`] remains the target
    /// *operation* rate: frames arrive every `connections·batch/rate`
    /// seconds and each counts as `batch` operations in the report.
    pub batch: usize,
}

impl LoadConfig {
    /// The `--quick` preset: a smoke-scale run that still exercises every
    /// operation type (sub-second, a few thousand operations).
    pub fn quick() -> Self {
        Self {
            connections: 4,
            rate: 4_000.0,
            read_ratio: 0.95,
            scan_ratio: 0.01,
            scan_limit: 64,
            keys: 4_096,
            skew: 0.6,
            duration: Duration::from_millis(500),
            seed: 0x5eed,
            batch: 1,
        }
    }
}

/// Merged outcome of one load-generator run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Operations completed successfully.
    pub operations: u64,
    /// Operations that failed (I/O or protocol errors; a failing
    /// connection stops issuing and reports what it got through).
    pub errors: u64,
    /// Operations the open-loop schedule made due during the run:
    /// `operations + errors + abandoned`. The honest denominator for the
    /// offered load.
    pub scheduled: u64,
    /// Scheduled operations that were never issued because their
    /// connection died first (connect failure or mid-run I/O error). A
    /// closed-loop harness silently drops these; an open loop must count
    /// them or its "offered load" is a lie.
    pub abandoned: u64,
    /// Connections that never got a socket at all. Not an arrival (nothing
    /// was put on the wire), so counted apart from `errors`; each one's
    /// whole schedule shows up in `abandoned`.
    pub connect_failures: u64,
    /// The configured target arrival rate, operations per second.
    pub target_rate: f64,
    /// The configured measurement window ([`LoadConfig::duration`]); the
    /// span the schedule was laid out over, even if the run died early.
    pub target_duration: Duration,
    /// Wall-clock time from first scheduled operation to last completion.
    pub elapsed: Duration,
    /// Completion latencies, measured from the *scheduled* start.
    pub latencies: LatencyHistogram,
}

/// The latency-percentile columns serving harnesses report, in the order
/// [`LoadReport::latency_cells`] emits them. Living next to [`LoadReport`]
/// so `bravod bench` and the `fig10_server` harness share one definition.
pub const LATENCY_COLUMNS: [&str; 3] = ["p50_us", "p95_us", "p99_us"];

/// Header for [`LoadReport::csv_cells`] — the one-row report schema
/// `bravod bench` emits (tab-separated on stdout, comma-separated with
/// `--csv`).
pub const REPORT_COLUMNS: [&str; 14] = [
    "label",
    "connections",
    "rate_target",
    "rate_achieved",
    "read_ratio",
    "batch",
    "duration_ms",
    "ops",
    "errors",
    "abandoned",
    "ops_per_sec",
    "p50_us",
    "p95_us",
    "p99_us",
];

/// Appends one CSV row to `path`, writing the header first when the file
/// is new or empty. Cells from [`LoadReport::csv_cells`] never contain
/// commas or quotes (labels are spec strings), so no quoting is needed.
pub fn append_csv(path: &str, header: &[&str], cells: &[String]) -> io::Result<()> {
    use std::io::Write as _;
    let fresh = std::fs::metadata(path)
        .map(|m| m.len() == 0)
        .unwrap_or(true);
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    if fresh {
        writeln!(file, "{}", header.join(","))?;
    }
    writeln!(file, "{}", cells.join(","))
}

/// Formats a latency as a microseconds cell with one decimal.
pub fn micros_cell(latency: Duration) -> String {
    format!("{:.1}", latency.as_secs_f64() * 1e6)
}

impl LoadReport {
    /// Achieved throughput in operations per second.
    pub fn throughput(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.operations as f64 / self.elapsed.as_secs_f64()
        }
    }

    /// Operations actually put on the wire (completions plus mid-run
    /// errors; connect failures issued nothing).
    pub fn issued(&self) -> u64 {
        self.operations + self.errors
    }

    /// The *achieved arrival rate*: operations issued per second over the
    /// run. When the generator keeps up this tracks [`Self::target_rate`];
    /// it drops below on either degradation mode — falling behind (late
    /// operations issued back-to-back stretch `elapsed` past the window,
    /// i.e. the open loop silently degrades toward a closed one) or dying
    /// early (abandoned operations shrink `issued` while the denominator
    /// stays the configured window, so a truncated run cannot masquerade
    /// as an on-rate one).
    pub fn achieved_rate(&self) -> f64 {
        let span = self.elapsed.max(self.target_duration);
        if span.is_zero() {
            0.0
        } else {
            self.issued() as f64 / span.as_secs_f64()
        }
    }

    /// `achieved_rate / target_rate` in `[0, 1]`-ish (can exceed 1 by
    /// rounding); 1.0 when no target was set.
    pub fn rate_fraction(&self) -> f64 {
        if self.target_rate <= 0.0 {
            1.0
        } else {
            self.achieved_rate() / self.target_rate
        }
    }

    /// The degradation warning smoke scripts grep for: `Some` when the
    /// achieved arrival rate fell below 95% of target, i.e. when this
    /// "open-loop" run partially degenerated into a closed loop and its
    /// latency percentiles undercount queueing delay.
    pub fn degradation_warning(&self) -> Option<String> {
        if self.rate_fraction() >= 0.95 {
            return None;
        }
        Some(format!(
            "warning: open loop degraded: achieved {:.0} of {:.0} target ops/s ({:.1}%), \
             {} of {} scheduled ops abandoned — latency percentiles undercount queueing",
            self.achieved_rate(),
            self.target_rate,
            self.rate_fraction() * 100.0,
            self.abandoned,
            self.scheduled,
        ))
    }

    /// The p50/p95/p99 cells of this report, matching [`LATENCY_COLUMNS`].
    pub fn latency_cells(&self) -> [String; 3] {
        [
            micros_cell(self.p50()),
            micros_cell(self.p95()),
            micros_cell(self.p99()),
        ]
    }

    /// The full report row, matching [`REPORT_COLUMNS`]: run identity
    /// (label + the offered-load parameters from `config`) followed by the
    /// measured outcome. `bravod bench` prints and appends exactly this
    /// row, and the `report` figure pipeline parses it back — one
    /// serialization, shared by every producer.
    pub fn csv_cells(&self, label: &str, config: &LoadConfig) -> [String; 14] {
        let [p50, p95, p99] = self.latency_cells();
        [
            label.to_string(),
            config.connections.to_string(),
            format!("{:.0}", config.rate),
            format!("{:.0}", self.achieved_rate()),
            format!("{}", config.read_ratio),
            config.batch.max(1).to_string(),
            config.duration.as_millis().to_string(),
            self.operations.to_string(),
            self.errors.to_string(),
            self.abandoned.to_string(),
            format!("{:.0}", self.throughput()),
            p50,
            p95,
            p99,
        ]
    }

    /// Median latency.
    pub fn p50(&self) -> Duration {
        self.latencies.percentile(0.50)
    }

    /// 95th-percentile latency.
    pub fn p95(&self) -> Duration {
        self.latencies.percentile(0.95)
    }

    /// 99th-percentile latency.
    pub fn p99(&self) -> Duration {
        self.latencies.percentile(0.99)
    }
}

/// Number of linear sub-buckets per power of two: 16 ⇒ ≤ 6.25% relative
/// quantization error, HdrHistogram-style.
const SUB_BITS: u32 = 4;
const SUB_BUCKETS: u64 = 1 << SUB_BITS;
/// Enough buckets for latencies up to 2^48 ns (~3.3 days).
const BUCKETS: usize = (48 - SUB_BITS as usize + 1) << SUB_BITS;

/// A fixed-footprint log-linear latency histogram (nanosecond samples,
/// ≤ 6.25% relative error per recorded value).
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Box<[u64; BUCKETS]>,
    total: u64,
    max_nanos: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: Box::new([0; BUCKETS]),
            total: 0,
            max_nanos: 0,
        }
    }

    fn bucket_index(nanos: u64) -> usize {
        let n = nanos.max(1);
        let exp = 63 - n.leading_zeros();
        if exp < SUB_BITS {
            return n as usize;
        }
        let mantissa = (n >> (exp - SUB_BITS)) & (SUB_BUCKETS - 1);
        let index = (((exp - SUB_BITS + 1) as u64) << SUB_BITS) + mantissa;
        (index as usize).min(BUCKETS - 1)
    }

    /// Upper bound (inclusive, in nanoseconds) of values mapped to `index`.
    fn bucket_upper(index: usize) -> u64 {
        let index = index as u64;
        let sub_bits = u64::from(SUB_BITS);
        if index < SUB_BUCKETS {
            return index;
        }
        let exp = (index >> sub_bits) + sub_bits - 1;
        let mantissa = index & (SUB_BUCKETS - 1);
        let base = (SUB_BUCKETS + mantissa) << (exp - sub_bits);
        base + (1u64 << (exp - sub_bits)) - 1
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Duration) {
        let nanos = latency.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.counts[Self::bucket_index(nanos)] += 1;
        self.total += 1;
        self.max_nanos = self.max_nanos.max(nanos);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// The largest recorded sample.
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_nanos)
    }

    /// The latency at quantile `q` in `[0, 1]` (upper bound of the hosting
    /// bucket, capped at the recorded maximum; zero when empty).
    pub fn percentile(&self, q: f64) -> Duration {
        if self.total == 0 {
            return Duration::ZERO;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (index, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= target {
                return Duration::from_nanos(Self::bucket_upper(index).min(self.max_nanos));
            }
        }
        Duration::from_nanos(self.max_nanos)
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.total += other.total;
        self.max_nanos = self.max_nanos.max(other.max_nanos);
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.total)
            .field("p50", &self.percentile(0.5))
            .field("p99", &self.percentile(0.99))
            .field("max", &self.max())
            .finish()
    }
}

/// Draws a key from `0..keys` with power-law skew θ (`skew` = 0 is
/// uniform): the continuous inverse-transform approximation of a bounded
/// Zipf, `key = ⌊keys · u^(1/(1−θ))⌋`, whose density is ∝ `key^(−θ)`.
fn skewed_key(rng: &mut SmallRng, keys: u64, skew: f64) -> u64 {
    let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
    let scaled = if skew <= 0.0 {
        unit
    } else {
        unit.powf(1.0 / (1.0 - skew.clamp(0.0, 0.99)))
    };
    ((scaled * keys as f64) as u64).min(keys.saturating_sub(1))
}

/// Drives one open-loop run against a `bravod` server and merges every
/// connection's outcome. Fails only if *no* connection could be
/// established; individual connection errors are counted in the report.
pub fn run(addr: SocketAddr, config: &LoadConfig) -> io::Result<LoadReport> {
    let connections = config.connections.max(1);
    let batch = effective_batch(config);
    // `rate` is the *operation* rate; each frame carries `batch` of them.
    let interval = Duration::from_secs_f64((connections * batch) as f64 / config.rate.max(1.0));
    let start = Instant::now();
    let outcomes: Vec<ConnOutcome> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..connections)
            .map(|conn| {
                let config = config.clone();
                s.spawn(move || {
                    // Stagger connections across one interval so aggregate
                    // arrivals are evenly spaced, then run the open loop.
                    let offset = interval.mul_f64(conn as f64 / connections as f64);
                    connection_loop(addr, &config, conn as u64, start + offset, interval)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load generator connection panicked"))
            .collect()
    });
    let mut report = LoadReport {
        operations: 0,
        errors: 0,
        scheduled: 0,
        abandoned: 0,
        connect_failures: 0,
        target_rate: config.rate,
        target_duration: config.duration,
        elapsed: start.elapsed(),
        latencies: LatencyHistogram::new(),
    };
    let mut connected = false;
    for outcome in &outcomes {
        connected |= !outcome.connect_failed;
        report.operations += outcome.operations;
        report.errors += outcome.errors;
        report.abandoned += outcome.abandoned;
        report.connect_failures += u64::from(outcome.connect_failed);
        report.latencies.merge(&outcome.latencies);
    }
    report.scheduled = report.operations + report.errors + report.abandoned;
    if !connected && report.connect_failures > 0 {
        return Err(io::Error::new(
            io::ErrorKind::ConnectionRefused,
            format!("no load-generator connection reached {addr}"),
        ));
    }
    Ok(report)
}

/// One connection's contribution to the merged [`LoadReport`].
struct ConnOutcome {
    operations: u64,
    errors: u64,
    /// Scheduled-but-never-issued operations (see [`LoadReport::abandoned`]).
    abandoned: u64,
    /// Whether this connection never got a socket at all.
    connect_failed: bool,
    latencies: LatencyHistogram,
}

/// The clamped operations-per-frame a run will actually use.
fn effective_batch(config: &LoadConfig) -> usize {
    config.batch.clamp(1, MAX_BATCH_OPS as usize)
}

/// Counts the arrivals at `first + k·interval` for `k ≥ from` that fall
/// before `deadline` — the operations a dead connection abandons. Uses the
/// same `Instant` arithmetic as the issue loop so the two never disagree
/// about what was due.
fn due_from(first: Instant, interval: Duration, deadline: Instant, from: u32) -> u64 {
    let mut due = 0;
    let mut k = from;
    while first + interval * k < deadline {
        due += 1;
        k += 1;
    }
    due
}

/// One connection's open loop: issue operations at the scheduled instants
/// until the configured duration has elapsed.
fn connection_loop(
    addr: SocketAddr,
    config: &LoadConfig,
    conn: u64,
    first: Instant,
    interval: Duration,
) -> ConnOutcome {
    let deadline = first + config.duration;
    // Every arrival carries `batch` operations, so each frame counts that
    // many in the operations/errors/abandoned ledger and the
    // `scheduled = operations + errors + abandoned` invariant survives.
    let batch = effective_batch(config) as u64;
    let mut outcome = ConnOutcome {
        operations: 0,
        errors: 0,
        abandoned: 0,
        connect_failed: false,
        latencies: LatencyHistogram::new(),
    };
    let mut client = match Client::connect(addr) {
        Ok(client) => client,
        Err(_) => {
            // Could not even connect: no samples, no issued arrivals, and
            // the whole schedule abandoned rather than silently vanished.
            outcome.connect_failed = true;
            outcome.abandoned = due_from(first, interval, deadline, 0) * batch;
            return outcome;
        }
    };
    let mut rng = SmallRng::seed_from_u64(config.seed ^ (conn.wrapping_mul(0x9e37_79b9_7f4a_7c15)));
    let scan_limit = config.scan_limit.clamp(1, MAX_SCAN_LIMIT);
    for k in 0u32.. {
        let scheduled = first + interval * k;
        if scheduled >= deadline {
            break;
        }
        let now = Instant::now();
        if scheduled > now {
            std::thread::sleep(scheduled - now);
        }
        let outcome_k = if batch > 1 {
            issue_batch(&mut client, &mut rng, config, batch as usize)
        } else {
            let key = skewed_key(&mut rng, config.keys, config.skew);
            issue(&mut client, &mut rng, config, key, scan_limit)
        };
        match outcome_k {
            Ok(()) => {
                // One latency sample per frame, however many ops it packs:
                // the frame is the unit the wire (and the lock) sees.
                outcome
                    .latencies
                    .record(Instant::now().saturating_duration_since(scheduled));
                outcome.operations += batch;
            }
            Err(_) => {
                // The stream may be desynchronized; stop this connection,
                // but record what the schedule still owed — those arrivals
                // were offered load, not noise.
                outcome.errors += batch;
                outcome.abandoned = due_from(first, interval, deadline, k + 1) * batch;
                break;
            }
        }
    }
    outcome
}

/// Issues one operation drawn from the configured mix.
fn issue(
    client: &mut Client,
    rng: &mut SmallRng,
    config: &LoadConfig,
    key: u64,
    scan_limit: u32,
) -> io::Result<()> {
    let draw = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
    if draw < config.scan_ratio.min(config.read_ratio) {
        client.scan(key, scan_limit)?;
    } else if draw < config.read_ratio {
        client.get(key)?;
    } else {
        match rng.gen_range(0u32..3) {
            0 => client.put(key, [key, !key, 0, 0])?,
            1 => client.merge(key, [1, 1, 1, 1])?,
            _ => {
                client.delete(key)?;
            }
        }
    }
    Ok(())
}

/// Issues one batched frame: `MultiGet` with probability `read_ratio`,
/// otherwise a `WriteBatch` whose ops are drawn from the same
/// `Put`/`Merge`/`Delete` split as the single-op path. Scans are skipped
/// in batched mode — batches carry point operations only.
fn issue_batch(
    client: &mut Client,
    rng: &mut SmallRng,
    config: &LoadConfig,
    batch: usize,
) -> io::Result<()> {
    let draw = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
    if draw < config.read_ratio {
        let keys = (0..batch)
            .map(|_| skewed_key(rng, config.keys, config.skew))
            .collect();
        client.multi_get(keys)?;
    } else {
        let ops = (0..batch)
            .map(|_| {
                let key = skewed_key(rng, config.keys, config.skew);
                match rng.gen_range(0u32..3) {
                    0 => BatchOp::Put {
                        key,
                        value: [key, !key, 0, 0],
                    },
                    1 => BatchOp::Merge {
                        key,
                        delta: [1, 1, 1, 1],
                    },
                    _ => BatchOp::Delete { key },
                }
            })
            .collect();
        client.write_batch(ops)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_are_ordered_and_bounded() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.percentile(0.99), Duration::ZERO);
        for micros in 1..=1000u64 {
            h.record(Duration::from_micros(micros));
        }
        assert_eq!(h.count(), 1000);
        let (p50, p95, p99) = (h.percentile(0.5), h.percentile(0.95), h.percentile(0.99));
        assert!(p50 <= p95 && p95 <= p99, "{p50:?} {p95:?} {p99:?}");
        assert!(p99 <= h.max());
        // ≤ 6.25% quantization error on a known median.
        let p50_us = p50.as_secs_f64() * 1e6;
        assert!((468.0..=532.0).contains(&p50_us), "p50 was {p50_us}µs");
    }

    #[test]
    fn histogram_buckets_invert() {
        for nanos in [
            0,
            1,
            5,
            15,
            16,
            17,
            100,
            1023,
            1024,
            123_456,
            u32::MAX as u64,
        ] {
            let index = LatencyHistogram::bucket_index(nanos);
            let upper = LatencyHistogram::bucket_upper(index);
            assert!(
                upper >= nanos.max(1),
                "bucket {index} upper {upper} < sample {nanos}"
            );
            // ≤ 6.25% relative error above the exact range.
            if nanos > 16 {
                assert!(
                    upper - nanos.max(1) <= nanos / 16 + 1,
                    "bucket {index} upper {upper} too far from {nanos}"
                );
            }
        }
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(Duration::from_micros(10));
        b.record(Duration::from_micros(1000));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!(a.max() >= Duration::from_micros(1000));
    }

    #[test]
    fn skewed_keys_stay_in_range_and_skew_toward_the_head() {
        let mut rng = SmallRng::seed_from_u64(7);
        let keys = 1_000;
        let mut head_uniform = 0;
        let mut head_skewed = 0;
        for _ in 0..4_000 {
            let u = skewed_key(&mut rng, keys, 0.0);
            let z = skewed_key(&mut rng, keys, 0.8);
            assert!(u < keys && z < keys);
            head_uniform += u64::from(u < keys / 10);
            head_skewed += u64::from(z < keys / 10);
        }
        assert!(
            head_skewed > head_uniform * 2,
            "skew had no effect: {head_skewed} vs {head_uniform}"
        );
    }

    #[test]
    fn due_from_counts_exactly_the_arrivals_the_loop_would_issue() {
        let first = Instant::now();
        let interval = Duration::from_millis(10);
        let deadline = first + Duration::from_millis(95);
        // Arrivals at 0,10,…,90 ms: ten in total.
        assert_eq!(due_from(first, interval, deadline, 0), 10);
        // After issuing the first four (k = 0..3), six remain.
        assert_eq!(due_from(first, interval, deadline, 4), 6);
        // From past the deadline, nothing remains.
        assert_eq!(due_from(first, interval, deadline, 10), 0);
        // An exact-boundary arrival (at 100ms for a 100ms window) is not
        // due, matching the issue loop's `scheduled >= deadline` break.
        let deadline = first + Duration::from_millis(100);
        assert_eq!(due_from(first, interval, deadline, 0), 10);
    }

    fn report_with_rates(issued: u64, abandoned: u64, target: f64) -> LoadReport {
        LoadReport {
            operations: issued,
            errors: 0,
            scheduled: issued + abandoned,
            abandoned,
            connect_failures: 0,
            target_rate: target,
            target_duration: Duration::from_secs(1),
            elapsed: Duration::from_secs(1),
            latencies: LatencyHistogram::new(),
        }
    }

    #[test]
    fn degradation_warning_fires_below_95_percent_of_target() {
        // 100% of target: clean.
        assert_eq!(
            report_with_rates(1000, 0, 1000.0).degradation_warning(),
            None
        );
        // 96%: still within tolerance.
        assert!(report_with_rates(960, 40, 1000.0)
            .degradation_warning()
            .is_none());
        // 80%: the open loop degraded; the warning names the shortfall and
        // the abandoned count, and carries the greppable marker.
        let warning = report_with_rates(800, 200, 1000.0)
            .degradation_warning()
            .expect("80% of target must warn");
        assert!(warning.contains("open loop degraded"), "{warning}");
        assert!(warning.contains("200 of 1000 scheduled"), "{warning}");
        // No target (rate 0) never warns.
        assert!(report_with_rates(0, 0, 0.0).degradation_warning().is_none());
    }

    #[test]
    fn achieved_rate_counts_errors_as_issued_arrivals() {
        let mut report = report_with_rates(900, 0, 1000.0);
        report.errors = 60;
        report.scheduled = 1000;
        report.abandoned = 40;
        assert_eq!(report.issued(), 960);
        assert!((report.achieved_rate() - 960.0).abs() < 1e-9);
        assert!(report.degradation_warning().is_none());
    }

    #[test]
    fn a_truncated_run_cannot_masquerade_as_on_rate() {
        // The server died 200ms into a 1s window: 200 of 1000 ops issued,
        // each perfectly on schedule. Per second of *elapsed* time that
        // looks like full rate; against the configured window it is 20%.
        let mut report = report_with_rates(200, 800, 1000.0);
        report.elapsed = Duration::from_millis(200);
        assert!((report.achieved_rate() - 200.0).abs() < 1e-9);
        assert!(report.rate_fraction() < 0.95);
        assert!(report.degradation_warning().is_some());
    }

    #[test]
    fn run_reports_connect_failures_without_phantom_arrivals() {
        // A port with no listener: every connection refuses, nothing is
        // issued, and run() surfaces it as an error rather than an
        // all-abandoned report.
        let addr = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
            // Listener dropped here; the port refuses connections.
        };
        let config = LoadConfig {
            connections: 2,
            rate: 1_000.0,
            duration: Duration::from_millis(50),
            ..LoadConfig::quick()
        };
        let err = run(addr, &config).expect_err("no listener must be an error");
        assert_eq!(err.kind(), std::io::ErrorKind::ConnectionRefused);
    }

    #[test]
    fn quick_preset_is_sane() {
        let c = LoadConfig::quick();
        assert!(c.connections >= 1);
        assert!(c.read_ratio > 0.5 && c.read_ratio <= 1.0);
        assert!(c.scan_ratio <= c.read_ratio);
        assert!(c.duration <= Duration::from_secs(2));
        assert_eq!(c.batch, 1, "single-op frames are the default");
    }

    #[test]
    fn effective_batch_clamps_to_the_protocol_cap() {
        let mut c = LoadConfig::quick();
        assert_eq!(effective_batch(&c), 1);
        c.batch = 0;
        assert_eq!(effective_batch(&c), 1, "batch 0 means one op per frame");
        c.batch = 16;
        assert_eq!(effective_batch(&c), 16);
        c.batch = usize::MAX;
        assert_eq!(effective_batch(&c), MAX_BATCH_OPS as usize);
    }
}
