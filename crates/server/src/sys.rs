//! Readiness notification for the multiplexed backend: raw `epoll` on
//! Linux, a portable round-robin scan everywhere else.
//!
//! The build environment has no crates.io access, so there is no `libc` or
//! `mio` to lean on; instead this module declares the three `epoll` entry
//! points itself (`std` already links the C library that provides them) and
//! keeps the `unsafe` surface to a few lines. Everything above it speaks
//! [`Poller`], which hides the choice:
//!
//! * [`Poller::Epoll`] (Linux only) — level-triggered `epoll`: one kernel
//!   object per worker, read interest always on, write interest toggled
//!   only while a connection has buffered output.
//! * [`Poller::Scan`] — the fallback: no kernel readiness at all. Every
//!   [`Poller::wait`] reports *every* registered token readable and
//!   writable (after a short tick so an idle pool does not spin), and the
//!   worker's nonblocking reads/writes discover the truth. O(connections)
//!   per tick instead of O(ready), but correct on any platform with
//!   nonblocking sockets — and selectable on Linux (`BRAVOD_MUX_POLLER=scan`
//!   or [`crate::ServerConfig::mux_scan_poller`]) so the portable path
//!   stays tested.

use std::collections::HashSet;
use std::io;
use std::time::Duration;

/// The raw socket handle the poller watches. On the scan poller the value
/// is never dereferenced, so non-Unix builds fall back to the token.
#[cfg(unix)]
pub type Fd = std::os::fd::RawFd;
/// The raw socket handle the poller watches (token-valued off Unix).
#[cfg(not(unix))]
pub type Fd = u64;

/// What a token is ready for, as reported by [`Poller::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Readiness {
    /// Data (or EOF, or a pending error) can be read without blocking.
    pub readable: bool,
    /// The socket's send buffer has room.
    pub writable: bool,
}

/// One readiness event: the token passed to [`Poller::register`] plus what
/// it is ready for.
pub type Event = (u64, Readiness);

/// A per-worker readiness source; see the module docs for the two flavours.
#[derive(Debug)]
pub enum Poller {
    /// Level-triggered `epoll` (Linux).
    #[cfg(target_os = "linux")]
    Epoll(epoll::Epoll),
    /// The portable fallback: report every registered token ready each tick.
    Scan(ScanPoller),
}

impl Poller {
    /// Opens the best poller available: `epoll` on Linux, the scan fallback
    /// elsewhere. `force_scan` (or `BRAVOD_MUX_POLLER=scan` in the
    /// environment) selects the fallback even on Linux.
    pub fn new(force_scan: bool) -> io::Result<Self> {
        let scan = force_scan
            || std::env::var("BRAVOD_MUX_POLLER")
                .map(|v| v == "scan")
                .unwrap_or(false);
        #[cfg(target_os = "linux")]
        if !scan {
            return Ok(Poller::Epoll(epoll::Epoll::new()?));
        }
        let _ = scan;
        Ok(Poller::Scan(ScanPoller::default()))
    }

    /// Which implementation this is (`"epoll"` or `"scan"`), for logs.
    pub fn kind(&self) -> &'static str {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(_) => "epoll",
            Poller::Scan(_) => "scan",
        }
    }

    /// Starts watching `fd`, delivering events tagged with `token`. Read
    /// interest is always on; write interest starts off.
    pub fn register(&mut self, fd: Fd, token: u64) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(e) => e.ctl(epoll::CTL_ADD, fd, epoll::read_events(), token),
            Poller::Scan(s) => {
                s.tokens.insert(token);
                Ok(())
            }
        }
    }

    /// Replaces `fd`'s interest set. Dropping read interest is how a
    /// backpressured connection stops level-triggered readiness from
    /// busy-spinning the worker while unread request bytes sit in the
    /// kernel buffer; error/hangup conditions are still delivered. A no-op
    /// on the scan poller, which always reports everything ready (its tick
    /// clock bounds the cost instead).
    pub fn set_interest(&mut self, fd: Fd, token: u64, read: bool, write: bool) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(e) => {
                let mut events = 0;
                if read {
                    events |= epoll::read_events();
                }
                if write {
                    events |= epoll::EPOLLOUT;
                }
                e.ctl(epoll::CTL_MOD, fd, events, token)
            }
            Poller::Scan(_) => {
                let _ = (fd, token, read, write);
                Ok(())
            }
        }
    }

    /// Stops watching `fd`. Must be called before the socket is closed.
    pub fn deregister(&mut self, fd: Fd, token: u64) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(e) => e.ctl(epoll::CTL_DEL, fd, 0, token),
            Poller::Scan(s) => {
                s.tokens.remove(&token);
                Ok(())
            }
        }
    }

    /// Waits up to `timeout` for readiness, appending events to `events`
    /// (cleared first). May return empty on timeout or interruption — the
    /// caller's loop re-checks its stop flag and intake either way.
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
        events.clear();
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(e) => e.wait(events, timeout),
            Poller::Scan(s) => {
                s.wait(events, timeout);
                Ok(())
            }
        }
    }
}

/// The portable fallback poller: a token set and a tick clock. See the
/// module docs for the trade-off.
#[derive(Debug, Default)]
pub struct ScanPoller {
    tokens: HashSet<u64>,
    /// Rotates each wait so no connection is permanently served first.
    rotation: usize,
}

impl ScanPoller {
    /// How long one idle tick lasts: long enough that an idle pool does not
    /// burn a core, short enough that request latency stays in the noise
    /// for the open-loop generator's millisecond-scale intervals.
    const TICK: Duration = Duration::from_millis(1);

    fn wait(&mut self, events: &mut Vec<Event>, timeout: Duration) {
        if self.tokens.is_empty() {
            std::thread::sleep(timeout.min(Duration::from_millis(10)));
            return;
        }
        std::thread::sleep(Self::TICK.min(timeout));
        let ready = Readiness {
            readable: true,
            writable: true,
        };
        let mut tokens: Vec<u64> = self.tokens.iter().copied().collect();
        tokens.sort_unstable();
        self.rotation = (self.rotation + 1) % tokens.len().max(1);
        let (tail, head) = tokens.split_at(self.rotation);
        events.extend(head.iter().chain(tail).map(|&t| (t, ready)));
    }
}

/// The Linux `epoll` binding: three foreign functions, one RAII wrapper.
#[cfg(target_os = "linux")]
pub mod epoll {
    use super::{Event, Readiness};
    use std::io;
    use std::os::fd::RawFd;
    use std::os::raw::c_int;
    use std::time::Duration;

    pub(super) const CTL_ADD: c_int = 1;
    pub(super) const CTL_DEL: c_int = 2;
    pub(super) const CTL_MOD: c_int = 3;

    const EPOLLIN: u32 = 0x001;
    pub(super) const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLL_CLOEXEC: c_int = 0o2000000;

    /// The event mask a registered connection always watches: readable
    /// data plus peer-hangup/error conditions (reported as readable so the
    /// next `read` surfaces the EOF or error).
    pub(super) fn read_events() -> u32 {
        EPOLLIN | EPOLLRDHUP
    }

    /// `struct epoll_event` from the kernel ABI; packed on x86-64 only,
    /// exactly as `<sys/epoll.h>` declares it.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    // These live in the C library `std` already links; declaring them here
    // substitutes for the `libc` crate the offline build cannot fetch.
    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    /// An owned `epoll` instance (closed on drop).
    #[derive(Debug)]
    pub struct Epoll {
        epfd: RawFd,
    }

    impl Epoll {
        /// Creates a close-on-exec `epoll` instance.
        pub(super) fn new() -> io::Result<Self> {
            // SAFETY: epoll_create1 takes a flags word and returns a new
            // descriptor or -1; no pointers are involved.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Self { epfd })
        }

        pub(super) fn ctl(&self, op: c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            let mut event = EpollEvent {
                events,
                data: token,
            };
            // SAFETY: `event` is a valid epoll_event for the duration of
            // the call; the kernel copies it and keeps no reference.
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut event) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub(super) fn wait(&self, out: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
            const MAX_EVENTS: usize = 128;
            let mut events = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
            let millis = timeout.as_millis().min(i32::MAX as u128) as c_int;
            // SAFETY: `events` is a writable buffer of MAX_EVENTS entries
            // and the kernel writes at most `maxevents` of them.
            let n =
                unsafe { epoll_wait(self.epfd, events.as_mut_ptr(), MAX_EVENTS as c_int, millis) };
            if n < 0 {
                let e = io::Error::last_os_error();
                // A signal delivery is not a poll failure; report no events.
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for event in &events[..n as usize] {
                // Copy out of the (possibly packed) struct before use.
                let (bits, token) = (event.events, event.data);
                out.push((
                    token,
                    Readiness {
                        readable: bits & (EPOLLIN | EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                        writable: bits & EPOLLOUT != 0,
                    },
                ));
            }
            Ok(())
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            // SAFETY: `epfd` is a descriptor this struct owns exclusively.
            unsafe { close(self.epfd) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_poller_reports_every_token_and_rotates() {
        let mut poller = Poller::new(true).unwrap();
        assert_eq!(poller.kind(), "scan");
        poller.register(0, 10).unwrap();
        poller.register(0, 11).unwrap();
        poller.register(0, 12).unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, Duration::from_millis(1)).unwrap();
        let mut tokens: Vec<u64> = events.iter().map(|(t, _)| *t).collect();
        assert_eq!(events.len(), 3);
        assert!(events.iter().all(|(_, r)| r.readable && r.writable));
        let first_head = tokens[0];
        tokens.sort_unstable();
        assert_eq!(tokens, vec![10, 11, 12]);
        // The next tick starts from a different token (round-robin).
        poller.wait(&mut events, Duration::from_millis(1)).unwrap();
        assert_ne!(events[0].0, first_head);
        // Deregistered tokens stop being reported.
        poller.deregister(0, 11).unwrap();
        poller.wait(&mut events, Duration::from_millis(1)).unwrap();
        assert_eq!(events.len(), 2);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_poller_sees_loopback_readiness() {
        use std::io::Write as _;
        use std::net::{TcpListener, TcpStream};
        use std::os::fd::AsRawFd as _;

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut peer = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (sock, _) = listener.accept().unwrap();
        sock.set_nonblocking(true).unwrap();

        let mut poller = Poller::new(false).unwrap();
        assert_eq!(poller.kind(), "epoll");
        poller.register(sock.as_raw_fd(), 7).unwrap();

        // Nothing to read yet: a short wait returns no read event.
        let mut events = Vec::new();
        poller.wait(&mut events, Duration::from_millis(10)).unwrap();
        assert!(events.iter().all(|(_, r)| !r.readable));

        peer.write_all(b"hi").unwrap();
        peer.flush().unwrap();
        poller
            .wait(&mut events, Duration::from_millis(1000))
            .unwrap();
        assert!(
            events.iter().any(|&(t, r)| t == 7 && r.readable),
            "no readable event after a write: {events:?}"
        );

        // Write interest surfaces writability on an idle socket.
        poller
            .set_interest(sock.as_raw_fd(), 7, true, true)
            .unwrap();
        poller
            .wait(&mut events, Duration::from_millis(1000))
            .unwrap();
        assert!(events.iter().any(|&(t, r)| t == 7 && r.writable));

        // Dropping read interest silences readable events even with unread
        // bytes in the kernel buffer (the backpressure case).
        peer.write_all(b"more").unwrap();
        peer.flush().unwrap();
        poller
            .set_interest(sock.as_raw_fd(), 7, false, false)
            .unwrap();
        poller.wait(&mut events, Duration::from_millis(50)).unwrap();
        assert!(
            events.iter().all(|&(t, r)| t != 7 || !r.readable),
            "readable event delivered with read interest off: {events:?}"
        );
        poller.deregister(sock.as_raw_fd(), 7).unwrap();
    }
}
