//! Readiness notification for the multiplexed backend: raw `epoll` on
//! Linux, a portable round-robin scan everywhere else.
//!
//! The foreign-function binding itself lives in [`bravo::sys::epoll`] — the
//! workspace's single raw-syscall seam — and this module is a *consumer*:
//! it owns the policy (what "readable" means, when write interest is
//! toggled) over the seam's thin `(token, bits)` events. Everything above
//! it speaks [`Poller`], which hides the choice:
//!
//! * [`Poller::Epoll`] (Linux only) — level-triggered `epoll`: one kernel
//!   object per worker, read interest always on, write interest toggled
//!   only while a connection has buffered output.
//! * [`Poller::Scan`] — the fallback: no kernel readiness at all. Every
//!   [`Poller::wait`] reports *every* registered token readable and
//!   writable (after a short tick so an idle pool does not spin), and the
//!   worker's nonblocking reads/writes discover the truth. O(connections)
//!   per tick instead of O(ready), but correct on any platform with
//!   nonblocking sockets — and selectable on Linux (`BRAVOD_MUX_POLLER=scan`
//!   or [`crate::ServerConfig::mux_scan_poller`]) so the portable path
//!   stays tested.

use std::collections::HashSet;
use std::io;
use std::time::Duration;

/// The raw socket handle the poller watches. On the scan poller the value
/// is never dereferenced, so non-Unix builds fall back to the token.
#[cfg(unix)]
pub type Fd = std::os::fd::RawFd;
/// The raw socket handle the poller watches (token-valued off Unix).
#[cfg(not(unix))]
pub type Fd = u64;

/// What a token is ready for, as reported by [`Poller::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Readiness {
    /// Data (or EOF, or a pending error) can be read without blocking.
    pub readable: bool,
    /// The socket's send buffer has room.
    pub writable: bool,
}

/// One readiness event: the token passed to [`Poller::register`] plus what
/// it is ready for.
pub type Event = (u64, Readiness);

/// A per-worker readiness source; see the module docs for the two flavours.
#[derive(Debug)]
pub enum Poller {
    /// Level-triggered `epoll` (Linux).
    #[cfg(target_os = "linux")]
    Epoll(EpollPoller),
    /// The portable fallback: report every registered token ready each tick.
    Scan(ScanPoller),
}

impl Poller {
    /// Opens the best poller available: `epoll` on Linux, the scan fallback
    /// elsewhere. `force_scan` (or `BRAVOD_MUX_POLLER=scan` in the
    /// environment) selects the fallback even on Linux.
    pub fn new(force_scan: bool) -> io::Result<Self> {
        let scan = force_scan
            || std::env::var("BRAVOD_MUX_POLLER")
                .map(|v| v == "scan")
                .unwrap_or(false);
        #[cfg(target_os = "linux")]
        if !scan {
            return Ok(Poller::Epoll(EpollPoller::new()?));
        }
        let _ = scan;
        Ok(Poller::Scan(ScanPoller::default()))
    }

    /// Which implementation this is (`"epoll"` or `"scan"`), for logs.
    pub fn kind(&self) -> &'static str {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(_) => "epoll",
            Poller::Scan(_) => "scan",
        }
    }

    /// Starts watching `fd`, delivering events tagged with `token`. Read
    /// interest is always on; write interest starts off.
    pub fn register(&mut self, fd: Fd, token: u64) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(e) => e.register(fd, token),
            Poller::Scan(s) => {
                s.tokens.insert(token);
                Ok(())
            }
        }
    }

    /// Replaces `fd`'s interest set. Dropping read interest is how a
    /// backpressured connection stops level-triggered readiness from
    /// busy-spinning the worker while unread request bytes sit in the
    /// kernel buffer; error/hangup conditions are still delivered. A no-op
    /// on the scan poller, which always reports everything ready (its tick
    /// clock bounds the cost instead).
    pub fn set_interest(&mut self, fd: Fd, token: u64, read: bool, write: bool) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(e) => e.set_interest(fd, token, read, write),
            Poller::Scan(_) => {
                let _ = (fd, token, read, write);
                Ok(())
            }
        }
    }

    /// Stops watching `fd`. Must be called before the socket is closed.
    pub fn deregister(&mut self, fd: Fd, token: u64) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(e) => e.deregister(fd, token),
            Poller::Scan(s) => {
                s.tokens.remove(&token);
                Ok(())
            }
        }
    }

    /// Waits up to `timeout` for readiness, appending events to `events`
    /// (cleared first). May return empty on timeout or interruption — the
    /// caller's loop re-checks its stop flag and intake either way.
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
        events.clear();
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(e) => e.wait(events, timeout),
            Poller::Scan(s) => {
                s.wait(events, timeout);
                Ok(())
            }
        }
    }
}

/// The portable fallback poller: a token set and a tick clock. See the
/// module docs for the trade-off.
#[derive(Debug, Default)]
pub struct ScanPoller {
    tokens: HashSet<u64>,
    /// Rotates each wait so no connection is permanently served first.
    rotation: usize,
}

impl ScanPoller {
    /// How long one idle tick lasts: long enough that an idle pool does not
    /// burn a core, short enough that request latency stays in the noise
    /// for the open-loop generator's millisecond-scale intervals.
    const TICK: Duration = Duration::from_millis(1);

    fn wait(&mut self, events: &mut Vec<Event>, timeout: Duration) {
        if self.tokens.is_empty() {
            std::thread::sleep(timeout.min(Duration::from_millis(10)));
            return;
        }
        std::thread::sleep(Self::TICK.min(timeout));
        let ready = Readiness {
            readable: true,
            writable: true,
        };
        let mut tokens: Vec<u64> = self.tokens.iter().copied().collect();
        tokens.sort_unstable();
        self.rotation = (self.rotation + 1) % tokens.len().max(1);
        let (tail, head) = tokens.split_at(self.rotation);
        events.extend(head.iter().chain(tail).map(|&t| (t, ready)));
    }
}

/// The `epoll` consumer: interest-mask policy and bit-to-[`Readiness`]
/// translation over the raw binding in [`bravo::sys::epoll`].
#[cfg(target_os = "linux")]
#[derive(Debug)]
pub struct EpollPoller {
    epoll: bravo::sys::epoll::Epoll,
    /// Scratch buffer for the seam's raw `(token, bits)` events.
    raw: Vec<bravo::sys::epoll::RawEvent>,
}

#[cfg(target_os = "linux")]
impl EpollPoller {
    /// The event mask a registered connection always watches: readable
    /// data plus peer-hangup/error conditions (reported as readable so the
    /// next `read` surfaces the EOF or error).
    fn read_events() -> u32 {
        use bravo::sys::epoll::{EPOLLIN, EPOLLRDHUP};
        EPOLLIN | EPOLLRDHUP
    }

    fn new() -> io::Result<Self> {
        Ok(Self {
            epoll: bravo::sys::epoll::Epoll::new()?,
            raw: Vec::new(),
        })
    }

    fn register(&mut self, fd: Fd, token: u64) -> io::Result<()> {
        self.epoll
            .ctl(bravo::sys::epoll::CTL_ADD, fd, Self::read_events(), token)
    }

    fn set_interest(&mut self, fd: Fd, token: u64, read: bool, write: bool) -> io::Result<()> {
        let mut events = 0;
        if read {
            events |= Self::read_events();
        }
        if write {
            events |= bravo::sys::epoll::EPOLLOUT;
        }
        self.epoll
            .ctl(bravo::sys::epoll::CTL_MOD, fd, events, token)
    }

    fn deregister(&mut self, fd: Fd, token: u64) -> io::Result<()> {
        self.epoll.ctl(bravo::sys::epoll::CTL_DEL, fd, 0, token)
    }

    fn wait(&mut self, out: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
        use bravo::sys::epoll::{EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
        self.raw.clear();
        self.epoll.wait(&mut self.raw, timeout)?;
        for &(token, bits) in &self.raw {
            out.push((
                token,
                Readiness {
                    readable: bits & (EPOLLIN | EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                },
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_poller_reports_every_token_and_rotates() {
        let mut poller = Poller::new(true).unwrap();
        assert_eq!(poller.kind(), "scan");
        poller.register(0, 10).unwrap();
        poller.register(0, 11).unwrap();
        poller.register(0, 12).unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, Duration::from_millis(1)).unwrap();
        let mut tokens: Vec<u64> = events.iter().map(|(t, _)| *t).collect();
        assert_eq!(events.len(), 3);
        assert!(events.iter().all(|(_, r)| r.readable && r.writable));
        let first_head = tokens[0];
        tokens.sort_unstable();
        assert_eq!(tokens, vec![10, 11, 12]);
        // The next tick starts from a different token (round-robin).
        poller.wait(&mut events, Duration::from_millis(1)).unwrap();
        assert_ne!(events[0].0, first_head);
        // Deregistered tokens stop being reported.
        poller.deregister(0, 11).unwrap();
        poller.wait(&mut events, Duration::from_millis(1)).unwrap();
        assert_eq!(events.len(), 2);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_poller_sees_loopback_readiness() {
        use std::io::Write as _;
        use std::net::{TcpListener, TcpStream};
        use std::os::fd::AsRawFd as _;

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut peer = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (sock, _) = listener.accept().unwrap();
        sock.set_nonblocking(true).unwrap();

        let mut poller = Poller::new(false).unwrap();
        assert_eq!(poller.kind(), "epoll");
        poller.register(sock.as_raw_fd(), 7).unwrap();

        // Nothing to read yet: a short wait returns no read event.
        let mut events = Vec::new();
        poller.wait(&mut events, Duration::from_millis(10)).unwrap();
        assert!(events.iter().all(|(_, r)| !r.readable));

        peer.write_all(b"hi").unwrap();
        peer.flush().unwrap();
        poller
            .wait(&mut events, Duration::from_millis(1000))
            .unwrap();
        assert!(
            events.iter().any(|&(t, r)| t == 7 && r.readable),
            "no readable event after a write: {events:?}"
        );

        // Write interest surfaces writability on an idle socket.
        poller
            .set_interest(sock.as_raw_fd(), 7, true, true)
            .unwrap();
        poller
            .wait(&mut events, Duration::from_millis(1000))
            .unwrap();
        assert!(events.iter().any(|&(t, r)| t == 7 && r.writable));

        // Dropping read interest silences readable events even with unread
        // bytes in the kernel buffer (the backpressure case).
        peer.write_all(b"more").unwrap();
        peer.flush().unwrap();
        poller
            .set_interest(sock.as_raw_fd(), 7, false, false)
            .unwrap();
        poller.wait(&mut events, Duration::from_millis(50)).unwrap();
        assert!(
            events.iter().all(|&(t, r)| t != 7 || !r.readable),
            "readable event delivered with read interest off: {events:?}"
        );
        poller.deregister(sock.as_raw_fd(), 7).unwrap();
    }
}
