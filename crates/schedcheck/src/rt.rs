//! The serialized-thread scheduler runtime.
//!
//! The checker runs N *real* OS threads but admits exactly one at a time:
//! every thread waits on one global condvar for `active == my_id`, and every
//! instrumented operation (atomic access, park/unpark, contended-mutex
//! retry) is a *yield point* where the running thread hands the token back
//! and a [`Strategy`] picks the next runnable thread. Because the program
//! under test only changes shared state at instrumented operations, the
//! sequence of strategy choices fully determines the interleaving — which is
//! what makes a failing schedule replayable from its seed alone.
//!
//! Blocking is virtualized: `park` marks the thread `Parked` (woken only by
//! `unpark`), `park_timeout` marks it `TimedPark` (additionally released
//! when *nothing else* can run — virtual timeouts fire only when the world
//! would otherwise idle), and `join` marks it `Join(target)`. When no thread
//! is runnable, no timeout is pending, and unfinished threads remain, the
//! world is in **global deadlock** — every parked thread can prove no waker
//! exists — and the run is failed with a per-thread state dump.
//!
//! Teardown after a failure unwinds every managed thread with a private
//! [`SchedAbort`] panic payload raised at its next yield point (via
//! `resume_unwind`, so the panic hook stays silent); each thread's wrapper
//! catches it and marks itself finished.

use std::cell::RefCell;
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

use crate::strategy::Strategy;

/// Per-schedule cap on *contended-spin* retries (instrumented-mutex
/// `try_lock` loops). These do not count against the step budget — a spinner
/// may legitimately wait out another checker running in a parallel test that
/// shares a global wait-queue bucket — but a hard cap keeps a genuine
/// livelock from hanging the test binary.
const MAX_CONTENDED_SPINS: u64 = 5_000_000;

/// Panic payload used to unwind managed threads during teardown. Not a
/// failure: each thread's wrapper catches it and finishes quietly.
pub(crate) struct SchedAbort;

/// What a schedule failure was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// No runnable thread, no pending virtual timeout, unfinished threads
    /// remain: every blocked thread provably has no waker (covers both
    /// classic deadlock and lost wakeups).
    Deadlock,
    /// The schedule exceeded its step budget — a livelock, or a budget set
    /// too low for the scenario.
    StepBudget,
    /// A managed thread panicked (e.g. an exclusion assertion fired).
    Panic,
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FailureKind::Deadlock => "global deadlock",
            FailureKind::StepBudget => "step budget exceeded",
            FailureKind::Panic => "thread panic",
        })
    }
}

/// A failure recorded by the runtime, before the checker attaches the
/// replay token.
#[derive(Debug, Clone)]
pub(crate) struct FailureRecord {
    pub kind: FailureKind,
    pub step: u64,
    pub detail: String,
    pub trace: Vec<u32>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Block {
    Parked,
    TimedPark,
    Join(usize),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Runnable,
    Blocked(Block),
    Finished,
}

struct ThreadRec {
    status: Status,
    /// A banked unpark token (`unpark` on a thread that is not parked).
    token: bool,
    /// Set when the last resume came from a virtual timeout rather than an
    /// unpark.
    timeout_fired: bool,
}

impl ThreadRec {
    fn new() -> Self {
        Self {
            status: Status::Runnable,
            token: false,
            timeout_fired: false,
        }
    }
}

struct SchedState {
    threads: Vec<ThreadRec>,
    active: Option<usize>,
    strategy: Strategy,
    steps: u64,
    max_steps: u64,
    contended_spins: u64,
    /// Chosen thread id per hand-off, for byte-for-byte replay comparison.
    trace: Vec<u32>,
    failure: Option<FailureRecord>,
    abort: bool,
}

/// One schedule's world: the serialized scheduler shared by its threads.
pub(crate) struct Scheduler {
    state: Mutex<SchedState>,
    cv: Condvar,
    /// OS handles of every managed thread (including the root), joined by
    /// the checker after the schedule ends.
    pub(crate) handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// What a finished schedule left behind.
pub(crate) struct RunOutcome {
    pub failure: Option<FailureRecord>,
    /// `(n_candidates, chosen)` per branching decision (exhaustive/replay
    /// strategies only).
    pub recorded: Vec<(u32, u32)>,
}

struct Ctx {
    sched: Arc<Scheduler>,
    id: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// The current thread's scheduler and managed id, if it is a managed thread.
pub(crate) fn ctx() -> Option<(Arc<Scheduler>, usize)> {
    CTX.with(|c| c.borrow().as_ref().map(|x| (Arc::clone(&x.sched), x.id)))
}

/// Whether the current thread is managed by a running checker. Lock code may
/// consult this to shrink spin-grace constants so bounded spins do not
/// dominate explored schedules.
pub fn is_managed() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

fn abort_unwind() -> ! {
    // resume_unwind skips the panic hook: teardown is not a failure and
    // must not spam stderr once per schedule.
    std::panic::resume_unwind(Box::new(SchedAbort))
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

impl Scheduler {
    /// A world with the root thread (id 0) registered and scheduled.
    pub(crate) fn new(mut strategy: Strategy, max_steps: u64) -> Arc<Self> {
        strategy.on_register(0);
        Arc::new(Self {
            state: Mutex::new(SchedState {
                threads: vec![ThreadRec::new()],
                active: Some(0),
                strategy,
                steps: 0,
                max_steps,
                contended_spins: 0,
                trace: Vec::new(),
                failure: None,
                abort: false,
            }),
            cv: Condvar::new(),
            handles: Mutex::new(Vec::new()),
        })
    }

    fn lock_state(&self) -> MutexGuard<'_, SchedState> {
        // The state mutex is never poisoned on purpose (no panic is raised
        // while it is held), but absorb poison defensively.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Records the first failure and begins teardown.
    fn fail_locked(&self, st: &mut SchedState, kind: FailureKind, detail: String) {
        if st.failure.is_none() {
            st.failure = Some(FailureRecord {
                kind,
                step: st.steps,
                detail,
                trace: st.trace.clone(),
            });
        }
        st.abort = true;
        self.cv.notify_all();
    }

    fn dump_threads(st: &SchedState) -> String {
        let mut out = String::new();
        for (i, t) in st.threads.iter().enumerate() {
            if !out.is_empty() {
                out.push_str(", ");
            }
            out.push_str(&format!("t{i}="));
            out.push_str(&match t.status {
                Status::Runnable => "runnable".to_string(),
                Status::Blocked(Block::Parked) => "parked".to_string(),
                Status::Blocked(Block::TimedPark) => "parked(timed)".to_string(),
                Status::Blocked(Block::Join(j)) => format!("join(t{j})"),
                Status::Finished => "finished".to_string(),
            });
        }
        out
    }

    /// Picks and publishes the next active thread. With nothing runnable:
    /// fires a virtual timeout if one is pending, ends the schedule if all
    /// threads finished, or declares global deadlock.
    fn hand_off(&self, st: &mut SchedState, yielder: Option<usize>) {
        let runnable: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Runnable)
            .map(|(i, _)| i)
            .collect();
        let chosen = if !runnable.is_empty() {
            runnable[st.strategy.choose(&runnable, yielder)]
        } else {
            let timed: Vec<usize> = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.status == Status::Blocked(Block::TimedPark))
                .map(|(i, _)| i)
                .collect();
            if !timed.is_empty() {
                let t = timed[st.strategy.choose(&timed, yielder)];
                st.threads[t].status = Status::Runnable;
                st.threads[t].timeout_fired = true;
                t
            } else if st.threads.iter().all(|t| t.status == Status::Finished) {
                st.active = None;
                self.cv.notify_all();
                return;
            } else {
                let parked: Vec<usize> = st
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| matches!(t.status, Status::Blocked(_)))
                    .map(|(i, _)| i)
                    .collect();
                let detail = format!(
                    "no runnable thread and no pending timeout; blocked thread(s) {parked:?} \
                     can never be woken (deadlock or lost wakeup). states: {}",
                    Self::dump_threads(st)
                );
                self.fail_locked(st, FailureKind::Deadlock, detail);
                return;
            }
        };
        st.trace.push(chosen as u32);
        st.active = Some(chosen);
        self.cv.notify_all();
    }

    /// Blocks on the condvar until this thread is active (or unwinds on
    /// abort). Consumes the guard.
    fn wait_turn(&self, mut st: MutexGuard<'_, SchedState>, me: usize) {
        loop {
            if st.abort {
                drop(st);
                abort_unwind();
            }
            if st.active == Some(me) {
                return;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn check_budget(&self, st: &mut SchedState) {
        if st.steps > st.max_steps {
            let detail = format!(
                "schedule exceeded its {}-step budget (livelock, or budget too small). states: {}",
                st.max_steps,
                Self::dump_threads(st)
            );
            self.fail_locked(st, FailureKind::StepBudget, detail);
        }
    }

    fn do_yield(&self, me: usize, contended: bool) {
        let mut st = self.lock_state();
        if st.abort {
            drop(st);
            abort_unwind();
        }
        if contended {
            st.contended_spins += 1;
            if st.contended_spins > MAX_CONTENDED_SPINS {
                self.fail_locked(
                    &mut st,
                    FailureKind::StepBudget,
                    "contended-spin retry cap exceeded (mutex livelock?)".to_string(),
                );
            } else {
                // Demote the spinner so priority schedules cannot starve
                // whichever thread holds the contended resource.
                st.strategy.demote(me);
            }
        } else {
            st.steps += 1;
            self.check_budget(&mut st);
        }
        if st.abort {
            drop(st);
            abort_unwind();
        }
        self.hand_off(&mut st, Some(me));
        self.wait_turn(st, me);
    }

    /// Virtual park. Returns whether the resume came from a virtual timeout
    /// (only possible for `timed` parks).
    fn do_park(&self, me: usize, timed: bool) -> bool {
        let mut st = self.lock_state();
        if st.abort {
            drop(st);
            abort_unwind();
        }
        st.steps += 1;
        self.check_budget(&mut st);
        if st.abort {
            drop(st);
            abort_unwind();
        }
        if st.threads[me].token {
            // A banked unpark: consume it and treat the park as a yield.
            st.threads[me].token = false;
            self.hand_off(&mut st, Some(me));
        } else {
            st.threads[me].status = Status::Blocked(if timed {
                Block::TimedPark
            } else {
                Block::Parked
            });
            self.hand_off(&mut st, Some(me));
        }
        self.wait_turn(st, me);
        let mut st = self.lock_state();
        let fired = st.threads[me].timeout_fired;
        st.threads[me].timeout_fired = false;
        fired
    }
}

/// A yield point: the currently running managed thread offers the scheduler
/// a chance to switch. No-op on unmanaged threads.
pub(crate) fn yield_point() {
    if let Some((sched, id)) = ctx() {
        sched.do_yield(id, false);
    }
}

/// A contended-spin yield (instrumented-mutex retry): demotes the spinner
/// under priority schedules and does not count against the step budget.
pub(crate) fn yield_contended() {
    match ctx() {
        Some((sched, id)) => sched.do_yield(id, true),
        None => std::thread::yield_now(),
    }
}

/// Virtual `thread::park` for the current managed thread.
pub(crate) fn park() {
    if let Some((sched, id)) = ctx() {
        sched.do_park(id, false);
    } else {
        std::thread::park();
    }
}

/// Virtual `thread::park_timeout`. The duration is not modeled: a virtual
/// timeout fires only when nothing else can run. If one does fire, a short
/// *real* sleep lets real-time deadlines (which the code under test
/// re-checks itself) make progress instead of burning scheduler steps.
pub(crate) fn park_timeout(dur: Duration) {
    if let Some((sched, id)) = ctx() {
        if sched.do_park(id, true) {
            std::thread::sleep(dur.min(Duration::from_millis(1)));
        }
    } else {
        std::thread::park_timeout(dur);
    }
}

/// Virtual `Thread::unpark` on a managed thread, callable from any thread.
pub(crate) fn unpark(sched: &Arc<Scheduler>, tid: usize) {
    let mut st = sched.lock_state();
    match st.threads[tid].status {
        Status::Blocked(Block::Parked) | Status::Blocked(Block::TimedPark) => {
            st.threads[tid].status = Status::Runnable;
            st.threads[tid].timeout_fired = false;
        }
        Status::Finished => {}
        _ => st.threads[tid].token = true,
    }
}

/// Spawns a managed thread in `sched`'s world. Returns its id and result
/// slot; the OS handle is stashed on the scheduler for end-of-run joining.
pub(crate) fn spawn_managed<T, F>(sched: &Arc<Scheduler>, f: F) -> (usize, Arc<Mutex<Option<T>>>)
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let id = {
        let mut st = sched.lock_state();
        let id = st.threads.len();
        st.threads.push(ThreadRec::new());
        st.strategy.on_register(id);
        id
    };
    let slot = Arc::new(Mutex::new(None));
    let slot2 = Arc::clone(&slot);
    let sched2 = Arc::clone(sched);
    let handle = std::thread::Builder::new()
        .name(format!("schedcheck-{id}"))
        .stack_size(512 * 1024)
        .spawn(move || {
            run_thread(sched2, id, move || {
                let v = f();
                *slot2.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
            })
        })
        .expect("spawn managed thread");
    sched
        .handles
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(handle);
    (id, slot)
}

/// Body of every managed OS thread: installs the TLS context, waits for its
/// first turn, runs `body`, and hands the world off on the way out. User
/// panics become schedule failures; [`SchedAbort`] unwinds are quiet.
pub(crate) fn run_thread(sched: Arc<Scheduler>, id: usize, body: impl FnOnce()) {
    CTX.with(|c| {
        *c.borrow_mut() = Some(Ctx {
            sched: Arc::clone(&sched),
            id,
        })
    });
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
        let st = sched.lock_state();
        sched.wait_turn(st, id);
        body();
    }));
    let mut st = sched.lock_state();
    st.threads[id].status = Status::Finished;
    for i in 0..st.threads.len() {
        if st.threads[i].status == Status::Blocked(Block::Join(id)) {
            st.threads[i].status = Status::Runnable;
        }
    }
    if let Err(payload) = result {
        if payload.downcast_ref::<SchedAbort>().is_none() {
            let detail = format!(
                "managed thread {id} panicked: {}",
                panic_message(payload.as_ref())
            );
            sched.fail_locked(&mut st, FailureKind::Panic, detail);
        }
    }
    if st.abort {
        sched.cv.notify_all();
    } else {
        sched.hand_off(&mut st, None);
    }
    drop(st);
    CTX.with(|c| *c.borrow_mut() = None);
}

/// Blocks the calling managed thread until managed thread `target` (in the
/// same world) finishes. Unmanaged callers spin in real time.
pub(crate) fn join_managed(sched: &Arc<Scheduler>, target: usize) {
    match ctx() {
        Some((my_sched, me)) if Arc::ptr_eq(&my_sched, sched) => {
            let mut st = sched.lock_state();
            if st.abort {
                drop(st);
                abort_unwind();
            }
            if st.threads[target].status != Status::Finished {
                st.threads[me].status = Status::Blocked(Block::Join(target));
                sched.hand_off(&mut st, Some(me));
                sched.wait_turn(st, me);
            }
        }
        _ => loop {
            let st = sched.lock_state();
            if st.threads[target].status == Status::Finished {
                return;
            }
            drop(st);
            std::thread::yield_now();
        },
    }
}

/// Joins every managed OS thread and extracts the schedule's outcome. Call
/// only after the root body has returned (or the world aborted).
pub(crate) fn finish(sched: Arc<Scheduler>) -> RunOutcome {
    loop {
        let handle = sched
            .handles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop();
        match handle {
            // Managed wrappers catch everything, so join errors are
            // impossible in practice; ignore them defensively.
            Some(h) => drop(h.join()),
            None => break,
        }
    }
    // `Thread` handles (e.g. retained by a wait-queue node a torn-down
    // world leaked) may still hold `Arc<Scheduler>` strong refs, so extract
    // the outcome under the lock rather than unwrapping the Arc.
    let mut st = sched.lock_state();
    RunOutcome {
        failure: st.failure.take(),
        recorded: st.strategy.recorded().to_vec(),
    }
}
