//! The checker's seeded PRNG.
//!
//! SplitMix64: tiny, fast, full-period over its 64-bit state, and — the
//! property the checker actually relies on — a pure function of the seed, so
//! a schedule is replayable from its `SCHEDCHECK_SEED` alone.

/// A SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator starting from `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform index below `n` (`n` must be nonzero). The modulo bias is
    /// irrelevant at the handful-of-threads scale the scheduler picks over.
    pub fn next_below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn next_below_stays_in_range() {
        let mut r = SplitMix64::new(7);
        for n in 1..=9usize {
            for _ in 0..50 {
                assert!(r.next_below(n) < n);
            }
        }
    }
}
