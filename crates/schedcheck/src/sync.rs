//! Instrumented drop-in replacements for the `std::sync` surface the lock
//! catalog uses.
//!
//! Each type wraps its `std` counterpart and inserts a scheduler yield point
//! before the real operation, so the checker can deschedule a thread between
//! any two shared-memory accesses. On unmanaged threads (no checker active)
//! every yield point is a no-op and the wrappers behave exactly like `std`.
//!
//! Memory-model caveat: the serialized scheduler explores *sequentially
//! consistent* interleavings only — weak-memory reorderings are out of scope
//! (that is what the TSan CI job is for). Orderings are passed through to
//! the real atomics untouched.

use std::sync::PoisonError;

/// Instrumented atomics: same API subset as `std::sync::atomic`, with a
/// yield point before every operation.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use crate::rt;

    /// An instrumented memory fence: a yield point plus the real fence.
    pub fn fence(order: Ordering) {
        rt::yield_point();
        std::sync::atomic::fence(order);
    }

    macro_rules! instrumented_atomic_common {
        ($name:ident, $std:ty, $val:ty) => {
            impl $name {
                /// An instrumented atomic with the given initial value.
                pub const fn new(v: $val) -> Self {
                    Self {
                        inner: <$std>::new(v),
                    }
                }

                /// See the `std` counterpart.
                pub fn load(&self, order: Ordering) -> $val {
                    rt::yield_point();
                    self.inner.load(order)
                }

                /// See the `std` counterpart.
                pub fn store(&self, val: $val, order: Ordering) {
                    rt::yield_point();
                    self.inner.store(val, order)
                }

                /// See the `std` counterpart.
                pub fn swap(&self, val: $val, order: Ordering) -> $val {
                    rt::yield_point();
                    self.inner.swap(val, order)
                }

                /// See the `std` counterpart.
                pub fn compare_exchange(
                    &self,
                    current: $val,
                    new: $val,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$val, $val> {
                    rt::yield_point();
                    self.inner.compare_exchange(current, new, success, failure)
                }

                /// See the `std` counterpart.
                pub fn compare_exchange_weak(
                    &self,
                    current: $val,
                    new: $val,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$val, $val> {
                    rt::yield_point();
                    self.inner
                        .compare_exchange_weak(current, new, success, failure)
                }

                /// Mutable access never races; no yield point.
                pub fn get_mut(&mut self) -> &mut $val {
                    self.inner.get_mut()
                }

                /// Consumes the atomic; no yield point.
                pub fn into_inner(self) -> $val {
                    self.inner.into_inner()
                }
            }

            impl std::fmt::Debug for $name {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    self.inner.fmt(f)
                }
            }

            impl From<$val> for $name {
                fn from(v: $val) -> Self {
                    Self::new(v)
                }
            }
        };
    }

    macro_rules! instrumented_atomic_int {
        ($name:ident, $std:ty, $val:ty, $doc:expr) => {
            #[doc = $doc]
            pub struct $name {
                inner: $std,
            }

            instrumented_atomic_common!($name, $std, $val);

            impl $name {
                /// See the `std` counterpart.
                pub fn fetch_add(&self, val: $val, order: Ordering) -> $val {
                    rt::yield_point();
                    self.inner.fetch_add(val, order)
                }

                /// See the `std` counterpart.
                pub fn fetch_sub(&self, val: $val, order: Ordering) -> $val {
                    rt::yield_point();
                    self.inner.fetch_sub(val, order)
                }

                /// See the `std` counterpart.
                pub fn fetch_and(&self, val: $val, order: Ordering) -> $val {
                    rt::yield_point();
                    self.inner.fetch_and(val, order)
                }

                /// See the `std` counterpart.
                pub fn fetch_or(&self, val: $val, order: Ordering) -> $val {
                    rt::yield_point();
                    self.inner.fetch_or(val, order)
                }

                /// See the `std` counterpart.
                pub fn fetch_xor(&self, val: $val, order: Ordering) -> $val {
                    rt::yield_point();
                    self.inner.fetch_xor(val, order)
                }

                /// See the `std` counterpart.
                pub fn fetch_max(&self, val: $val, order: Ordering) -> $val {
                    rt::yield_point();
                    self.inner.fetch_max(val, order)
                }

                /// See the `std` counterpart.
                pub fn fetch_min(&self, val: $val, order: Ordering) -> $val {
                    rt::yield_point();
                    self.inner.fetch_min(val, order)
                }
            }

            impl Default for $name {
                fn default() -> Self {
                    Self::new(<$val>::default())
                }
            }
        };
    }

    instrumented_atomic_int!(
        AtomicU8,
        std::sync::atomic::AtomicU8,
        u8,
        "Instrumented `AtomicU8`."
    );
    instrumented_atomic_int!(
        AtomicU32,
        std::sync::atomic::AtomicU32,
        u32,
        "Instrumented `AtomicU32`."
    );
    instrumented_atomic_int!(
        AtomicU64,
        std::sync::atomic::AtomicU64,
        u64,
        "Instrumented `AtomicU64`."
    );
    instrumented_atomic_int!(
        AtomicUsize,
        std::sync::atomic::AtomicUsize,
        usize,
        "Instrumented `AtomicUsize`."
    );
    instrumented_atomic_int!(
        AtomicIsize,
        std::sync::atomic::AtomicIsize,
        isize,
        "Instrumented `AtomicIsize`."
    );

    impl AtomicU32 {
        /// Uninstrumented load for crate-internal emulation layers (the
        /// virtual futex's registry-locked word check), which must not
        /// introduce a yield point inside a non-yielding critical section.
        pub(crate) fn unsynchronized_load(&self) -> u32 {
            self.inner.load(Ordering::SeqCst)
        }
    }

    /// Instrumented `AtomicBool`.
    pub struct AtomicBool {
        inner: std::sync::atomic::AtomicBool,
    }

    instrumented_atomic_common!(AtomicBool, std::sync::atomic::AtomicBool, bool);

    impl AtomicBool {
        /// See the `std` counterpart.
        pub fn fetch_and(&self, val: bool, order: Ordering) -> bool {
            rt::yield_point();
            self.inner.fetch_and(val, order)
        }

        /// See the `std` counterpart.
        pub fn fetch_or(&self, val: bool, order: Ordering) -> bool {
            rt::yield_point();
            self.inner.fetch_or(val, order)
        }
    }

    impl Default for AtomicBool {
        fn default() -> Self {
            Self::new(false)
        }
    }

    /// Instrumented `AtomicPtr<T>`.
    pub struct AtomicPtr<T> {
        inner: std::sync::atomic::AtomicPtr<T>,
    }

    impl<T> AtomicPtr<T> {
        /// An instrumented atomic pointer.
        pub const fn new(p: *mut T) -> Self {
            Self {
                inner: std::sync::atomic::AtomicPtr::new(p),
            }
        }

        /// See the `std` counterpart.
        pub fn load(&self, order: Ordering) -> *mut T {
            rt::yield_point();
            self.inner.load(order)
        }

        /// See the `std` counterpart.
        pub fn store(&self, p: *mut T, order: Ordering) {
            rt::yield_point();
            self.inner.store(p, order)
        }

        /// See the `std` counterpart.
        pub fn swap(&self, p: *mut T, order: Ordering) -> *mut T {
            rt::yield_point();
            self.inner.swap(p, order)
        }

        /// See the `std` counterpart.
        pub fn compare_exchange(
            &self,
            current: *mut T,
            new: *mut T,
            success: Ordering,
            failure: Ordering,
        ) -> Result<*mut T, *mut T> {
            rt::yield_point();
            self.inner.compare_exchange(current, new, success, failure)
        }

        /// See the `std` counterpart.
        pub fn compare_exchange_weak(
            &self,
            current: *mut T,
            new: *mut T,
            success: Ordering,
            failure: Ordering,
        ) -> Result<*mut T, *mut T> {
            rt::yield_point();
            self.inner
                .compare_exchange_weak(current, new, success, failure)
        }
    }

    impl<T> std::fmt::Debug for AtomicPtr<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            self.inner.fmt(f)
        }
    }

    impl<T> Default for AtomicPtr<T> {
        fn default() -> Self {
            Self::new(std::ptr::null_mut())
        }
    }
}

/// An instrumented mutex.
///
/// Managed threads never block the OS thread on the inner mutex (that would
/// wedge the serialized world: the holder cannot run without the token the
/// blocked thread holds). Instead they loop `try_lock` with a
/// *contended-spin* yield, which demotes the spinner under priority
/// schedules so the holder always gets scheduled. Poisoning is absorbed:
/// during teardown the checker unwinds threads at yield points, possibly
/// while a guard is live, and that must not wedge unrelated schedules
/// sharing a global queue bucket.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard for [`Mutex`], deref-compatible with `std::sync::MutexGuard`.
pub struct MutexGuard<'a, T: ?Sized + 'a> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// An instrumented mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex; no yield point.
    pub fn into_inner(self) -> Result<T, PoisonError<T>> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex. The `Result` mirrors `std`'s signature, but this
    /// lock never reports poison (see the type docs); it always returns
    /// `Ok`.
    #[allow(clippy::result_large_err)]
    pub fn lock(&self) -> Result<MutexGuard<'_, T>, PoisonError<MutexGuard<'_, T>>> {
        if !crate::rt::is_managed() {
            return Ok(match self.inner.lock() {
                Ok(g) => MutexGuard { inner: g },
                Err(poisoned) => MutexGuard {
                    inner: poisoned.into_inner(),
                },
            });
        }
        crate::rt::yield_point();
        loop {
            match self.inner.try_lock() {
                Ok(g) => return Ok(MutexGuard { inner: g }),
                Err(std::sync::TryLockError::Poisoned(poisoned)) => {
                    return Ok(MutexGuard {
                        inner: poisoned.into_inner(),
                    })
                }
                Err(std::sync::TryLockError::WouldBlock) => crate::rt::yield_contended(),
            }
        }
    }

    /// Mutable access never races; no yield point.
    pub fn get_mut(&mut self) -> Result<&mut T, PoisonError<&mut T>> {
        self.inner.get_mut()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        (**self).fmt(f)
    }
}

/// Instrumented `std::thread` subset: park/unpark virtualized through the
/// scheduler for managed threads, passthrough otherwise.
pub mod thread {
    use std::sync::Arc;
    use std::time::Duration;

    use crate::rt;

    /// A handle to a thread, unparkable from anywhere.
    #[derive(Clone)]
    pub struct Thread {
        repr: Repr,
    }

    #[derive(Clone)]
    enum Repr {
        Os(std::thread::Thread),
        Managed {
            sched: Arc<rt::Scheduler>,
            id: usize,
        },
    }

    /// A comparable thread identity (used e.g. by wait-queue invariants).
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub struct ThreadId(IdRepr);

    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    enum IdRepr {
        Os(std::thread::ThreadId),
        Managed(usize, usize),
    }

    impl Thread {
        /// Wakes the thread from a park (or banks a token).
        pub fn unpark(&self) {
            match &self.repr {
                Repr::Os(t) => t.unpark(),
                Repr::Managed { sched, id } => rt::unpark(sched, *id),
            }
        }

        /// This thread's identity.
        pub fn id(&self) -> ThreadId {
            match &self.repr {
                Repr::Os(t) => ThreadId(IdRepr::Os(t.id())),
                Repr::Managed { sched, id } => {
                    ThreadId(IdRepr::Managed(Arc::as_ptr(sched) as usize, *id))
                }
            }
        }
    }

    impl std::fmt::Debug for Thread {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match &self.repr {
                Repr::Os(t) => t.fmt(f),
                Repr::Managed { id, .. } => write!(f, "Thread(managed {id})"),
            }
        }
    }

    /// A handle to the current thread.
    pub fn current() -> Thread {
        match rt::ctx() {
            Some((sched, id)) => Thread {
                repr: Repr::Managed { sched, id },
            },
            None => Thread {
                repr: Repr::Os(std::thread::current()),
            },
        }
    }

    /// Parks the current thread (virtually, when managed).
    pub fn park() {
        rt::park();
    }

    /// Parks the current thread with a timeout (virtual timeouts fire only
    /// when nothing else can run; see [`crate`] docs).
    pub fn park_timeout(dur: Duration) {
        rt::park_timeout(dur);
    }

    /// Yields: a scheduler yield point when managed, `std` yield otherwise.
    pub fn yield_now() {
        match rt::ctx() {
            Some(_) => crate::rt::yield_point(),
            None => std::thread::yield_now(),
        }
    }
}

/// A virtual `futex(2)`: the wait/wake pair the blocking layer's futex
/// backend routes through under `--features schedcheck`, so kernel sleeps
/// become schedulable events instead of real syscalls.
///
/// Semantics mirror the kernel's: [`futex::wait`] atomically checks
/// that the word still holds `expected` and enqueues the caller (the
/// registry lock makes check+enqueue one indivisible step, exactly like the
/// kernel's bucket lock), and [`futex::wake`] dequeues up to `max`
/// waiters of that word and
/// unparks them. Both entry points are scheduler yield points, so the
/// checker can interleave the "syscalls" against every other instrumented
/// access — a dropped wake leaves its waiter parked forever and surfaces as
/// a global deadlock with a replayable seed.
pub mod futex {
    use std::sync::atomic::{AtomicBool as StdAtomicBool, Ordering};
    use std::sync::{Arc, Mutex as StdMutex, PoisonError};
    use std::time::Duration;

    use super::atomic::AtomicU32;
    use super::thread;
    use crate::rt;

    /// Why a [`wait`] call returned; mirrors the kernel outcomes the native
    /// backend distinguishes (`EINTR` has no virtual analogue).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum WaitOutcome {
        /// A [`wake`] roused this waiter (or it raced a timeout's
        /// deregistration). Re-check the condition.
        Woken,
        /// The word no longer held `expected` at the atomic check
        /// (the virtual `EAGAIN`).
        Stale,
        /// The timeout fired with the waiter still enqueued.
        TimedOut,
    }

    struct Waiter {
        /// The futex word's address: the wait/wake rendezvous key.
        key: usize,
        thread: thread::Thread,
        woken: Arc<StdAtomicBool>,
    }

    /// One process-wide registry, like the kernel's futex hash table. A raw
    /// `std` mutex on purpose: its critical sections contain no yield
    /// points, so a managed holder can never be descheduled mid-section and
    /// the serialized world cannot wedge on it.
    static WAITERS: StdMutex<Vec<Waiter>> = StdMutex::new(Vec::new());

    fn registry() -> std::sync::MutexGuard<'static, Vec<Waiter>> {
        WAITERS.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Virtual `FUTEX_WAIT`: sleeps until woken if `word` still holds
    /// `expected`. The virtual timeout fires only when nothing else can run
    /// (see [`crate`] docs on timed parks).
    pub fn wait(word: &AtomicU32, expected: u32, timeout: Option<Duration>) -> WaitOutcome {
        rt::yield_point();
        let key = word as *const AtomicU32 as usize;
        let woken = Arc::new(StdAtomicBool::new(false));
        {
            let mut q = registry();
            // The kernel's atomic check-and-enqueue: uninstrumented read
            // under the registry lock, so no other managed thread can slip
            // a wake between the check and the enqueue.
            if word.unsynchronized_load() != expected {
                return WaitOutcome::Stale;
            }
            q.push(Waiter {
                key,
                thread: thread::current(),
                woken: Arc::clone(&woken),
            });
        }
        loop {
            if woken.load(Ordering::SeqCst) {
                return WaitOutcome::Woken;
            }
            match timeout {
                None => thread::park(),
                Some(dur) => {
                    thread::park_timeout(dur);
                    if woken.load(Ordering::SeqCst) {
                        return WaitOutcome::Woken;
                    }
                    // Timed out (or spuriously unparked): deregister. A
                    // waker that already dequeued us is morally a wakeup.
                    let mut q = registry();
                    match q.iter().position(|w| Arc::ptr_eq(&w.woken, &woken)) {
                        Some(pos) => {
                            q.remove(pos);
                            return WaitOutcome::TimedOut;
                        }
                        None => return WaitOutcome::Woken,
                    }
                }
            }
        }
    }

    /// Virtual `FUTEX_WAKE`: dequeues up to `max` waiters of `word` (FIFO)
    /// and unparks them. Returns how many were roused.
    pub fn wake(word: &AtomicU32, max: usize) -> usize {
        rt::yield_point();
        let key = word as *const AtomicU32 as usize;
        let mut roused = Vec::new();
        {
            let mut q = registry();
            let mut i = 0;
            while i < q.len() && roused.len() < max {
                if q[i].key == key {
                    let w = q.remove(i);
                    w.woken.store(true, Ordering::SeqCst);
                    roused.push(w);
                } else {
                    i += 1;
                }
            }
        }
        // Unpark outside the registry lock: rt::unpark takes the scheduler
        // state lock, and lock-ordering discipline keeps them disjoint.
        for w in &roused {
            w.thread.unpark();
        }
        roused.len()
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn stale_word_returns_without_enqueueing() {
            let word = AtomicU32::new(3);
            assert_eq!(wait(&word, 2, None), WaitOutcome::Stale);
            assert_eq!(wake(&word, usize::MAX), 0);
        }

        #[test]
        fn wake_rouses_an_unmanaged_waiter() {
            let word = Arc::new(AtomicU32::new(0));
            let waiter = {
                let word = Arc::clone(&word);
                std::thread::spawn(move || loop {
                    let g = word.load(Ordering::SeqCst);
                    if g != 0 {
                        return;
                    }
                    wait(&word, g, None);
                })
            };
            std::thread::sleep(Duration::from_millis(20));
            word.store(1, Ordering::SeqCst);
            wake(&word, usize::MAX);
            waiter.join().expect("waiter wedged: virtual wake lost");
        }

        #[test]
        fn timeout_fires_and_deregisters() {
            let word = AtomicU32::new(0);
            assert_eq!(
                wait(&word, 0, Some(Duration::from_millis(5))),
                WaitOutcome::TimedOut
            );
            assert_eq!(wake(&word, usize::MAX), 0, "timed-out waiter left behind");
        }
    }
}
