//! The `schedcheck` command-line tool.
//!
//! Currently one subcommand:
//!
//! ```text
//! schedcheck lint [REPO_ROOT]
//! ```
//!
//! walks `crates/*/src` under the repo root (default: the current
//! directory) and exits nonzero if any lock-discipline violation is found.
//! CI runs it as a hard gate; see the lint module docs for the rules.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: schedcheck lint [REPO_ROOT]");
    eprintln!();
    eprintln!("  lint    scan crates/*/src for lock-discipline violations");
    eprintln!("          (bare thread::park, raw spin loops, std atomics in");
    eprintln!("          facade-migrated modules); exit 1 if any are found");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            if args.len() > 2 {
                return usage();
            }
            let root = args
                .get(1)
                .map(PathBuf::from)
                .unwrap_or_else(|| PathBuf::from("."));
            match schedcheck::lint::lint_tree(&root) {
                Ok(violations) if violations.is_empty() => {
                    println!("schedcheck lint: clean ({})", root.display());
                    ExitCode::SUCCESS
                }
                Ok(violations) => {
                    for v in &violations {
                        eprintln!("{v}");
                    }
                    eprintln!("schedcheck lint: {} violation(s)", violations.len());
                    ExitCode::FAILURE
                }
                Err(e) => {
                    eprintln!("schedcheck lint: cannot scan {}: {e}", root.display());
                    ExitCode::from(2)
                }
            }
        }
        _ => usage(),
    }
}
