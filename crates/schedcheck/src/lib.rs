//! `schedcheck`: a deterministic concurrency model checker for the lock
//! catalog, in the spirit of loom and shuttle, vendored std-only so it
//! builds offline (the same philosophy as `crates/shims/`).
//!
//! # How it works
//!
//! A checker schedule runs the test body on real OS threads, but
//! *serialized*: exactly one thread is runnable at a time, and every
//! instrumented operation — an atomic access through [`sync::atomic`], a
//! park/unpark through [`sync::thread`], a contended [`sync::Mutex`] — is a
//! yield point where a seeded strategy picks the next thread. Because
//! shared state only changes at yield points, the seed fully determines the
//! interleaving: any failure prints a `SCHEDCHECK_SEED` token that replays
//! it byte-for-byte (same hand-off trace, same failure).
//!
//! The lock catalog routes its atomics and parking through the
//! `bravo::sync` facade, which re-exports `std` in normal builds and these
//! shims under the `schedcheck` feature — so the checker drives the *real*
//! lock code, not a model of it.
//!
//! # What it detects
//!
//! * **Global deadlock / lost wakeups** — no runnable thread, no pending
//!   timeout, unfinished threads remain. Because blocking is virtualized,
//!   this is a proof that no waker exists, not a timeout heuristic.
//! * **Livelock** — a schedule exceeding its step budget.
//! * **Assertion failures** — any panic in the body (e.g. an exclusion
//!   violation observed by instrumented atomics) fails the schedule.
//!
//! # Example
//!
//! ```
//! use schedcheck::{check, spawn, Config};
//! use schedcheck::sync::atomic::{AtomicUsize, Ordering};
//! use std::sync::Arc;
//!
//! check(&Config::random_walk(7).with_schedules(64), || {
//!     let n = Arc::new(AtomicUsize::new(0));
//!     let n2 = Arc::clone(&n);
//!     let t = spawn(move || n2.fetch_add(1, Ordering::SeqCst));
//!     n.fetch_add(1, Ordering::SeqCst);
//!     t.join();
//!     assert_eq!(n.load(Ordering::SeqCst), 2);
//! });
//! ```
//!
//! # Strategies
//!
//! [`Config::random_walk`] picks uniformly among runnable threads;
//! [`Config::pct`] runs PCT priority schedules (find bugs needing one
//! thread descheduled across a long window, like a reader stalled between
//! its table publish and its bias re-check); [`Config::exhaustive`]
//! enumerates every branching choice for small scenarios. All of them
//! replay through [`Config::replay`] / the `SCHEDCHECK_SEED` env var.

pub mod lint;
pub mod rng;
pub mod sync;

mod check;
mod rt;
mod strategy;

pub use check::{check, run, spawn, Config, Failure, JoinHandle, Report, SEED_ENV};
pub use rt::{is_managed, FailureKind};
pub use strategy::StrategyKind;
