//! The lock-discipline lint: a lexical scan of `crates/*/src` rejecting
//! patterns that bypass the catalog's waiting and instrumentation layers.
//!
//! Four rules, each with a path allowlist naming the modules that *are*
//! the sanctioned implementation site:
//!
//! * **bare-park** — `thread::park` / `park_timeout` outside `core::wait`
//!   (and the `core::sync` facade / schedcheck shims that implement it).
//!   Ad-hoc parking is how lost wakeups are born; all blocking goes through
//!   [`WaitQueue`]'s check-register-recheck protocol.
//! * **raw-spin** — `spin_loop(` / `yield_now(` outside `core::clock`'s
//!   `Backoff`. Raw spin loops bypass the `WaitStrategy` dispatch (and the
//!   scheduler's yield points under schedcheck).
//! * **raw-atomics** — `std::sync::atomic` mentioned inside a module that
//!   was migrated to the `core::sync` facade; going behind the facade's
//!   back makes the checker blind to those accesses.
//! * **raw-syscall** — `syscall(` / `SYS_futex` outside `bravo::sys`, the
//!   single audited owner of every foreign function the workspace calls.
//!   A second futex call site would dodge both the `futex_*` counters and
//!   the schedcheck virtual futex, making its wakeups invisible to the
//!   model checker.
//!
//! The scan is lexical by design: it reads lines, strips `//` comments, and
//! substring-matches. That catches the honest mistakes (someone pasting a
//! `std::thread::park()` wait loop) without needing a parser; reviewers
//! handle adversarial obfuscation.
//!
//! [`WaitQueue`]: ../bravo/wait/struct.WaitQueue.html

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One banned pattern plus the repo-relative path prefixes where it is
/// allowed (the implementation sites).
struct Rule {
    name: &'static str,
    patterns: &'static [&'static str],
    allow: &'static [&'static str],
    why: &'static str,
}

const RULES: &[Rule] = &[
    Rule {
        name: "bare-park",
        patterns: &["thread::park"],
        allow: &[
            "crates/core/src/wait.rs",
            "crates/core/src/sync.rs",
            "crates/schedcheck/",
            "crates/shims/",
        ],
        why: "blocking must go through core::wait::WaitQueue (check-register-recheck), \
              not ad-hoc thread::park/park_timeout",
    },
    Rule {
        name: "raw-spin",
        patterns: &["spin_loop(", "yield_now("],
        allow: &[
            "crates/core/src/clock.rs",
            "crates/core/src/sync.rs",
            "crates/schedcheck/",
            "crates/shims/",
        ],
        why: "spin waits must use core::clock::Backoff / cpu_relax (WaitStrategy-aware, \
              instrumented under schedcheck), not raw spin_loop/yield_now",
    },
    Rule {
        name: "raw-atomics",
        // Only enforced inside the migrated modules, listed in MIGRATED.
        patterns: &["std::sync::atomic"],
        allow: &[],
        why: "this module was migrated to the core::sync facade; direct std::sync::atomic \
              bypasses schedcheck instrumentation",
    },
    Rule {
        name: "raw-syscall",
        patterns: &["syscall(", "SYS_futex"],
        allow: &["crates/core/src/sys.rs", "crates/schedcheck/"],
        why: "raw syscalls live in bravo::sys, the single audited FFI seam; a second \
              futex/epoll call site bypasses the futex_* counters and the schedcheck \
              virtual futex",
    },
];

/// Modules migrated to the `core::sync` facade; the `raw-atomics` rule
/// applies only here.
const MIGRATED: &[&str] = &[
    "crates/core/src/raw.rs",
    "crates/core/src/vrt.rs",
    "crates/core/src/twod.rs",
    "crates/core/src/wait.rs",
    "crates/core/src/lock.rs",
    "crates/rwlocks/src/counter.rs",
    "crates/rwlocks/src/bytelock.rs",
    "crates/rwlocks/src/mutex.rs",
    "crates/kvstore/src/memtable.rs",
];

/// One lint hit.
#[derive(Debug, Clone)]
pub struct Violation {
    /// File, relative to the scanned root.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Rule name (`bare-park`, `raw-spin`, `raw-atomics`, `raw-syscall`).
    pub rule: &'static str,
    /// The offending line, trimmed.
    pub snippet: String,
    /// Why the pattern is banned.
    pub why: &'static str,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    {}",
            self.file.display(),
            self.line,
            self.rule,
            self.snippet,
            self.why
        )
    }
}

fn is_allowed(rel: &str, allow: &[&str]) -> bool {
    allow.iter().any(|a| rel.starts_with(a))
}

/// Strips a line comment. Lexical: the first `//` outside nothing-fancy
/// wins; good enough for a discipline lint (URLs in strings lose their
/// tails, which only ever *reduces* matches).
fn strip_comment(line: &str) -> &str {
    match line.find("//") {
        Some(pos) => &line[..pos],
        None => line,
    }
}

fn scan_file(root: &Path, path: &Path, out: &mut Vec<Violation>) -> io::Result<()> {
    let rel = path
        .strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/");
    let text = fs::read_to_string(path)?;
    for (idx, raw_line) in text.lines().enumerate() {
        let line = strip_comment(raw_line);
        for rule in RULES {
            let in_scope = if rule.name == "raw-atomics" {
                MIGRATED.iter().any(|m| rel == *m)
            } else {
                !is_allowed(&rel, rule.allow)
            };
            if !in_scope {
                continue;
            }
            if rule.patterns.iter().any(|p| line.contains(p)) {
                out.push(Violation {
                    file: PathBuf::from(&rel),
                    line: idx + 1,
                    rule: rule.name,
                    snippet: raw_line.trim().to_string(),
                    why: rule.why,
                });
            }
        }
    }
    Ok(())
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<Violation>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk(root, &path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            scan_file(root, &path, out)?;
        }
    }
    Ok(())
}

/// Lints every `crates/*/src` tree under `root` (the repo root). Returns
/// all violations, in path order.
pub fn lint_tree(root: &Path) -> io::Result<Vec<Violation>> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    let mut crates: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crates.sort();
    for krate in crates {
        let src = krate.join("src");
        if src.is_dir() {
            walk(root, &src, &mut out)?;
        }
        // Nested layout (crates/shims/*): one level deeper.
        let mut nested: Vec<PathBuf> = fs::read_dir(&krate)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir() && p.join("src").is_dir())
            .collect();
        nested.sort();
        for sub in nested {
            walk(root, &sub.join("src"), &mut out)?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_tree(name: &str) -> PathBuf {
        let root =
            std::env::temp_dir().join(format!("schedcheck_lint_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(root.join("crates/demo/src")).unwrap();
        root
    }

    #[test]
    fn planted_bare_park_is_rejected() {
        let root = temp_tree("park");
        fs::write(
            root.join("crates/demo/src/lib.rs"),
            "pub fn wait() {\n    std::thread::park();\n}\n",
        )
        .unwrap();
        let violations = lint_tree(&root).unwrap();
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert_eq!(violations[0].rule, "bare-park");
        assert_eq!(violations[0].line, 2);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn planted_raw_spin_is_rejected_but_comments_are_not() {
        let root = temp_tree("spin");
        fs::write(
            root.join("crates/demo/src/lib.rs"),
            "// std::hint::spin_loop() in a comment is fine\n\
             pub fn busy() { std::hint::spin_loop(); }\n",
        )
        .unwrap();
        let violations = lint_tree(&root).unwrap();
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert_eq!(violations[0].rule, "raw-spin");
        assert_eq!(violations[0].line, 2);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn allowlisted_sites_pass() {
        let root = temp_tree("allow");
        fs::create_dir_all(root.join("crates/core/src")).unwrap();
        fs::write(
            root.join("crates/core/src/wait.rs"),
            "pub fn park_here() { std::thread::park(); }\n",
        )
        .unwrap();
        fs::create_dir_all(root.join("crates/core/src")).unwrap();
        fs::write(
            root.join("crates/core/src/clock.rs"),
            "pub fn relax() { std::hint::spin_loop(); }\n",
        )
        .unwrap();
        let violations = lint_tree(&root).unwrap();
        assert!(violations.is_empty(), "{violations:?}");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn raw_atomics_only_fire_in_migrated_modules() {
        let root = temp_tree("atomics");
        // Unmigrated module: free to use std atomics.
        fs::write(
            root.join("crates/demo/src/lib.rs"),
            "use std::sync::atomic::AtomicUsize;\n",
        )
        .unwrap();
        // Migrated module: must go through the facade.
        fs::create_dir_all(root.join("crates/rwlocks/src")).unwrap();
        fs::write(
            root.join("crates/rwlocks/src/counter.rs"),
            "use std::sync::atomic::AtomicU64;\n",
        )
        .unwrap();
        let violations = lint_tree(&root).unwrap();
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert_eq!(violations[0].rule, "raw-atomics");
        assert!(violations[0].file.to_string_lossy().contains("counter.rs"));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn planted_raw_syscall_is_rejected_outside_the_seam() {
        let root = temp_tree("syscall");
        fs::write(
            root.join("crates/demo/src/lib.rs"),
            "extern \"C\" { fn syscall(num: i64, ...) -> i64; }\n\
             pub fn nap(word: *const u32) { unsafe { syscall(202, word, 0, 0, 0) }; }\n",
        )
        .unwrap();
        let violations = lint_tree(&root).unwrap();
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(violations.iter().all(|v| v.rule == "raw-syscall"));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn the_sys_seam_is_allowed_to_invoke_syscalls() {
        let root = temp_tree("syscall_seam");
        fs::create_dir_all(root.join("crates/core/src")).unwrap();
        fs::write(
            root.join("crates/core/src/sys.rs"),
            "pub fn wake(word: *const u32) { unsafe { syscall(SYS_futex, word, 1, 1) }; }\n",
        )
        .unwrap();
        let violations = lint_tree(&root).unwrap();
        assert!(violations.is_empty(), "{violations:?}");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn nested_shim_layout_is_scanned_and_allowlisted() {
        let root = temp_tree("nested");
        fs::create_dir_all(root.join("crates/shims/fake/src")).unwrap();
        fs::write(
            root.join("crates/shims/fake/src/lib.rs"),
            "pub fn f() { std::thread::park(); }\n",
        )
        .unwrap();
        let violations = lint_tree(&root).unwrap();
        assert!(violations.is_empty(), "{violations:?}");
        let _ = fs::remove_dir_all(&root);
    }
}
