//! The checker: explores many schedules of a test body and reports the
//! first failing one with a replayable seed token.
//!
//! A *seed token* encodes everything needed to reproduce a schedule:
//! `rw:<hex>` (random walk), `pct<depth>:<hex>` (PCT), or
//! `trace:<c0.c1...>` (an explicit branching-choice trace, used by
//! exhaustive exploration). [`run`] honours the `SCHEDCHECK_SEED`
//! environment variable: when set, only that one schedule is executed —
//! paste the token a failure printed and the same interleaving replays.

use std::sync::{Arc, Mutex};

use crate::rt::{self, FailureKind, RunOutcome, Scheduler};
use crate::strategy::{Strategy, StrategyKind};

/// Environment variable holding a seed token to replay.
pub const SEED_ENV: &str = "SCHEDCHECK_SEED";

/// Checker configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Exploration strategy.
    pub strategy: StrategyKind,
    /// Base seed; schedule `i` uses `seed + i`.
    pub seed: u64,
    /// Maximum schedules to explore.
    pub schedules: usize,
    /// Per-schedule yield-point budget; exceeding it fails the schedule
    /// (livelock detector).
    pub max_steps: u64,
    /// When set, run exactly this token (overrides everything else except
    /// `max_steps`).
    replay: Option<String>,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            strategy: StrategyKind::RandomWalk,
            seed: 1,
            schedules: 256,
            max_steps: 20_000,
            replay: None,
        }
    }
}

impl Config {
    /// Random-walk exploration from `seed`.
    pub fn random_walk(seed: u64) -> Self {
        Self {
            strategy: StrategyKind::RandomWalk,
            seed,
            ..Self::default()
        }
    }

    /// PCT priority schedules of the given bug `depth`, from `seed`.
    pub fn pct(seed: u64, depth: u32) -> Self {
        Self {
            strategy: StrategyKind::Pct { depth },
            seed,
            ..Self::default()
        }
    }

    /// Bounded exhaustive DFS over branching choices.
    pub fn exhaustive() -> Self {
        Self {
            strategy: StrategyKind::Exhaustive,
            ..Self::default()
        }
    }

    /// Replay a single schedule from a seed token (as printed by a
    /// failure, e.g. `rw:2a` or `pct3:1f` or `trace:0.1.1`).
    pub fn replay(token: &str) -> Self {
        Self {
            replay: Some(token.to_string()),
            ..Self::default()
        }
    }

    /// Sets the schedule budget.
    pub fn with_schedules(mut self, schedules: usize) -> Self {
        self.schedules = schedules;
        self
    }

    /// Sets the per-schedule step budget.
    pub fn with_max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = max_steps;
        self
    }
}

/// A failing schedule, with everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct Failure {
    /// What went wrong.
    pub kind: FailureKind,
    /// Replay token: rerun with `SCHEDCHECK_SEED=<token>` (or
    /// [`Config::replay`]) to reproduce this interleaving.
    pub seed_token: String,
    /// Yield-point count when the failure was detected.
    pub step: u64,
    /// Human-readable description (includes a per-thread state dump).
    pub detail: String,
    /// The schedule itself: chosen thread id per hand-off. Two runs of the
    /// same token produce identical traces.
    pub trace: Vec<u32>,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "schedcheck failure: {} at step {}\n  {}\n  replay with {}={}",
            self.kind, self.step, self.detail, SEED_ENV, self.seed_token
        )
    }
}

impl std::error::Error for Failure {}

/// A completed exploration.
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Schedules actually executed.
    pub schedules: usize,
    /// Exhaustive mode only: the whole choice tree was explored before the
    /// schedule budget ran out.
    pub complete: bool,
}

fn seed_token(kind: StrategyKind, seed: u64) -> String {
    match kind {
        StrategyKind::RandomWalk => format!("rw:{seed:x}"),
        StrategyKind::Pct { depth } => format!("pct{depth}:{seed:x}"),
        StrategyKind::Exhaustive => unreachable!("exhaustive failures use trace tokens"),
    }
}

fn trace_token(choices: &[u32]) -> String {
    let body: Vec<String> = choices.iter().map(|c| c.to_string()).collect();
    format!("trace:{}", body.join("."))
}

fn parse_token(token: &str) -> Result<Strategy, String> {
    let (kind, rest) = token
        .split_once(':')
        .ok_or_else(|| format!("malformed seed token '{token}' (expected kind:payload)"))?;
    if kind == "trace" {
        let choices = if rest.is_empty() {
            Vec::new()
        } else {
            rest.split('.')
                .map(|c| c.parse::<u32>())
                .collect::<Result<Vec<_>, _>>()
                .map_err(|e| format!("bad trace token '{token}': {e}"))?
        };
        return Ok(Strategy::replay(choices));
    }
    let seed = u64::from_str_radix(rest, 16).map_err(|e| format!("bad seed in '{token}': {e}"))?;
    if kind == "rw" {
        Ok(Strategy::new(StrategyKind::RandomWalk, seed))
    } else if let Some(depth) = kind.strip_prefix("pct") {
        let depth = depth
            .parse::<u32>()
            .map_err(|e| format!("bad pct depth in '{token}': {e}"))?;
        Ok(Strategy::new(StrategyKind::Pct { depth }, seed))
    } else {
        Err(format!("unknown seed token kind '{kind}'"))
    }
}

type Body = Arc<dyn Fn() + Send + Sync + 'static>;

fn run_one(strategy: Strategy, max_steps: u64, body: Body) -> RunOutcome {
    let sched = Scheduler::new(strategy, max_steps);
    let sched2 = Arc::clone(&sched);
    let root = std::thread::Builder::new()
        .name("schedcheck-root".to_string())
        .spawn(move || rt::run_thread(sched2, 0, move || body()))
        .expect("spawn schedcheck root thread");
    sched
        .handles
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(root);
    rt::finish(sched)
}

fn mk_failure(rec: crate::rt::FailureRecord, token: String) -> Failure {
    Failure {
        kind: rec.kind,
        seed_token: token,
        step: rec.step,
        detail: rec.detail,
        trace: rec.trace,
    }
}

/// Explores schedules of `body` under `config`. Returns the first failure
/// (deadlock, lost wakeup, livelock, or panic — e.g. a violated assertion in
/// the body), or a [`Report`] if every explored schedule passed.
///
/// The body runs once per schedule on a fresh managed root thread; build
/// all shared state inside it and spawn sibling threads with [`spawn`].
pub fn run<F>(config: &Config, body: F) -> Result<Report, Failure>
where
    F: Fn() + Send + Sync + 'static,
{
    let body: Body = Arc::new(body);
    let replay_token = config
        .replay
        .clone()
        .or_else(|| std::env::var(SEED_ENV).ok().filter(|s| !s.is_empty()));
    if let Some(token) = replay_token {
        let strategy = parse_token(&token).unwrap_or_else(|e| panic!("schedcheck: {e}"));
        let out = run_one(strategy, config.max_steps, body);
        return match out.failure {
            Some(rec) => Err(mk_failure(rec, token)),
            None => Ok(Report {
                schedules: 1,
                complete: false,
            }),
        };
    }
    match config.strategy {
        StrategyKind::RandomWalk | StrategyKind::Pct { .. } => {
            for i in 0..config.schedules {
                let seed = config.seed.wrapping_add(i as u64);
                let strategy = Strategy::new(config.strategy, seed);
                let out = run_one(strategy, config.max_steps, Arc::clone(&body));
                if let Some(rec) = out.failure {
                    return Err(mk_failure(rec, seed_token(config.strategy, seed)));
                }
            }
            Ok(Report {
                schedules: config.schedules,
                complete: false,
            })
        }
        StrategyKind::Exhaustive => {
            let mut prefix: Vec<u32> = Vec::new();
            let mut count = 0usize;
            let mut complete = false;
            while count < config.schedules {
                let strategy = Strategy::exhaustive_with_prefix(prefix.clone());
                let out = run_one(strategy, config.max_steps, Arc::clone(&body));
                count += 1;
                if let Some(rec) = out.failure {
                    let choices: Vec<u32> = out.recorded.iter().map(|&(_, c)| c).collect();
                    return Err(mk_failure(rec, trace_token(&choices)));
                }
                // Advance the DFS frontier: bump the deepest decision that
                // still has an unexplored sibling.
                let mut next: Option<Vec<u32>> = None;
                for k in (0..out.recorded.len()).rev() {
                    let (n, c) = out.recorded[k];
                    if c + 1 < n {
                        let mut p: Vec<u32> = out.recorded[..k].iter().map(|&(_, c)| c).collect();
                        p.push(c + 1);
                        next = Some(p);
                        break;
                    }
                }
                match next {
                    Some(p) => prefix = p,
                    None => {
                        complete = true;
                        break;
                    }
                }
            }
            Ok(Report {
                schedules: count,
                complete,
            })
        }
    }
}

/// Like [`run`], but panics with the full failure message (including the
/// `SCHEDCHECK_SEED` replay line) on the first failing schedule.
pub fn check<F>(config: &Config, body: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    match run(config, body) {
        Ok(report) => report,
        Err(failure) => panic!("{failure}"),
    }
}

/// A handle to a thread started with [`spawn`].
pub struct JoinHandle<T> {
    inner: HandleRepr<T>,
}

enum HandleRepr<T> {
    Os(std::thread::JoinHandle<T>),
    Managed {
        sched: Arc<Scheduler>,
        id: usize,
        slot: Arc<Mutex<Option<T>>>,
    },
}

impl<T> JoinHandle<T> {
    /// Waits for the thread and returns its result. Panics if the thread
    /// panicked (inside a checker the whole schedule already failed).
    pub fn join(self) -> T {
        match self.inner {
            HandleRepr::Os(h) => h.join().expect("spawned thread panicked"),
            HandleRepr::Managed { sched, id, slot } => {
                rt::join_managed(&sched, id);
                slot.lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .expect("managed thread finished without a result (it panicked)")
            }
        }
    }
}

/// Spawns a thread. Inside a checker schedule the thread joins the managed
/// world (scheduled at yield points like every other thread); outside one it
/// is a plain `std::thread::spawn`.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    match rt::ctx() {
        Some((sched, _)) => {
            let (id, slot) = rt::spawn_managed(&sched, f);
            JoinHandle {
                inner: HandleRepr::Managed { sched, id, slot },
            }
        }
        None => JoinHandle {
            inner: HandleRepr::Os(std::thread::spawn(f)),
        },
    }
}
