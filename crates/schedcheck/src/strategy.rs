//! Schedule strategies: how the scheduler picks the next thread at each
//! yield point.
//!
//! Three exploration modes plus deterministic replay:
//!
//! * **Random walk** — uniform choice among runnable threads. Cheap,
//!   surprisingly effective for shallow races.
//! * **PCT** (probabilistic concurrency testing, Burckhardt et al.) —
//!   threads get random priorities and the highest-priority runnable thread
//!   always runs; at `depth - 1` random *change points* the running thread
//!   is demoted below everyone. PCT finds bugs that need one thread to be
//!   descheduled across a long window (e.g. a reader stalled between its
//!   table publish and its bias re-check while a whole revocation scan
//!   runs), which a random walk essentially never produces.
//! * **Exhaustive** — depth-first enumeration of every branching choice, for
//!   small thread counts and short schedules.
//! * **Replay** — consume a recorded choice trace verbatim.

use crate::rng::SplitMix64;

/// How many decisions a PCT schedule expects; change points are sampled
/// uniformly below this horizon.
const PCT_HORIZON: u64 = 512;

/// User-facing strategy selector (lives in [`crate::Config`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyKind {
    /// Uniform random choice among runnable threads.
    RandomWalk,
    /// PCT priority schedules with `depth` (number of ordering constraints
    /// the bug needs; `depth - 1` priority change points per schedule).
    Pct {
        /// The PCT bug depth `d`; schedules use `d - 1` change points.
        depth: u32,
    },
    /// Bounded exhaustive DFS over all branching choices.
    Exhaustive,
}

/// A strategy instance driving one schedule.
#[derive(Debug)]
pub(crate) enum Strategy {
    RandomWalk {
        rng: SplitMix64,
    },
    Pct {
        rng: SplitMix64,
        /// Priority per thread id; higher runs first. Demotions go below
        /// zero via `low_water`, initial priorities are positive randoms.
        prios: Vec<i64>,
        low_water: i64,
        /// Branching-decision indices at which the active thread is demoted.
        change_at: Vec<u64>,
        decisions: u64,
    },
    Exhaustive {
        /// Choices forced for this schedule (from the DFS frontier); beyond
        /// it the strategy picks the first candidate.
        prefix: Vec<u32>,
        cursor: usize,
        /// `(n_candidates, chosen)` per branching decision, recorded so the
        /// explorer can advance the frontier (and so failures can replay).
        recorded: Vec<(u32, u32)>,
    },
    Replay {
        choices: Vec<u32>,
        cursor: usize,
        /// Re-recorded trace, so replays can be compared byte-for-byte.
        recorded: Vec<(u32, u32)>,
    },
}

impl Strategy {
    pub(crate) fn new(kind: StrategyKind, seed: u64) -> Self {
        match kind {
            StrategyKind::RandomWalk => Strategy::RandomWalk {
                rng: SplitMix64::new(seed),
            },
            StrategyKind::Pct { depth } => {
                let mut rng = SplitMix64::new(seed);
                let change_at = (0..depth.saturating_sub(1))
                    .map(|_| rng.next_u64() % PCT_HORIZON)
                    .collect();
                Strategy::Pct {
                    rng,
                    prios: Vec::new(),
                    low_water: 0,
                    change_at,
                    decisions: 0,
                }
            }
            StrategyKind::Exhaustive => Strategy::Exhaustive {
                prefix: Vec::new(),
                cursor: 0,
                recorded: Vec::new(),
            },
        }
    }

    pub(crate) fn exhaustive_with_prefix(prefix: Vec<u32>) -> Self {
        Strategy::Exhaustive {
            prefix,
            cursor: 0,
            recorded: Vec::new(),
        }
    }

    pub(crate) fn replay(choices: Vec<u32>) -> Self {
        Strategy::Replay {
            choices,
            cursor: 0,
            recorded: Vec::new(),
        }
    }

    /// A new thread `tid` registered; extend per-thread state.
    pub(crate) fn on_register(&mut self, tid: usize) {
        if let Strategy::Pct { rng, prios, .. } = self {
            debug_assert_eq!(prios.len(), tid);
            prios.push((rng.next_u64() >> 1) as i64);
        }
    }

    /// Picks the index of the next thread among `candidates` (sorted thread
    /// ids, nonempty). `yielder` is the thread giving up the CPU (PCT change
    /// points demote it).
    pub(crate) fn choose(&mut self, candidates: &[usize], yielder: Option<usize>) -> usize {
        debug_assert!(!candidates.is_empty());
        if candidates.len() == 1 {
            return 0;
        }
        match self {
            Strategy::RandomWalk { rng } => rng.next_below(candidates.len()),
            Strategy::Pct {
                prios,
                low_water,
                change_at,
                decisions,
                ..
            } => {
                if let Some(y) = yielder {
                    if change_at.contains(decisions) {
                        *low_water -= 1;
                        prios[y] = *low_water;
                    }
                }
                *decisions += 1;
                candidates
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, &tid)| prios[tid])
                    .map(|(i, _)| i)
                    .expect("candidates nonempty")
            }
            Strategy::Exhaustive {
                prefix,
                cursor,
                recorded,
            } => {
                let want = prefix.get(*cursor).copied().unwrap_or(0) as usize;
                // A prefix index out of range means the program under test
                // branched differently than on the recording run
                // (nondeterminism); clamping keeps the walk well-defined.
                let idx = want.min(candidates.len() - 1);
                recorded.push((candidates.len() as u32, idx as u32));
                *cursor += 1;
                idx
            }
            Strategy::Replay {
                choices,
                cursor,
                recorded,
            } => {
                let want = choices.get(*cursor).copied().unwrap_or(0) as usize;
                let idx = want.min(candidates.len() - 1);
                recorded.push((candidates.len() as u32, idx as u32));
                *cursor += 1;
                idx
            }
        }
    }

    /// A contended-spin retry by `tid` (e.g. an instrumented mutex that
    /// failed `try_lock`): demote it so priority schedules cannot starve the
    /// holder forever.
    pub(crate) fn demote(&mut self, tid: usize) {
        if let Strategy::Pct {
            prios, low_water, ..
        } = self
        {
            *low_water -= 1;
            prios[tid] = *low_water;
        }
    }

    /// The recorded `(n_candidates, chosen)` trace, for exhaustive frontier
    /// advancement and replay comparison.
    pub(crate) fn recorded(&self) -> &[(u32, u32)] {
        match self {
            Strategy::Exhaustive { recorded, .. } | Strategy::Replay { recorded, .. } => recorded,
            _ => &[],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_walk_is_deterministic_per_seed() {
        let mut a = Strategy::new(StrategyKind::RandomWalk, 9);
        let mut b = Strategy::new(StrategyKind::RandomWalk, 9);
        for _ in 0..50 {
            assert_eq!(a.choose(&[0, 1, 2], Some(0)), b.choose(&[0, 1, 2], Some(0)));
        }
    }

    #[test]
    fn pct_runs_highest_priority_until_demoted() {
        let mut s = Strategy::new(StrategyKind::Pct { depth: 1 }, 3);
        s.on_register(0);
        s.on_register(1);
        // With no change points (depth 1) the same thread wins every time.
        let first = s.choose(&[0, 1], Some(0));
        for _ in 0..20 {
            assert_eq!(s.choose(&[0, 1], Some(0)), first);
        }
        // Demoting the winner flips the choice.
        s.demote([0, 1][first]);
        assert_ne!(s.choose(&[0, 1], Some(0)), first);
    }

    #[test]
    fn exhaustive_records_and_follows_prefix() {
        let mut s = Strategy::exhaustive_with_prefix(vec![1]);
        assert_eq!(s.choose(&[0, 1], None), 1);
        assert_eq!(s.choose(&[0, 1, 2], None), 0); // beyond prefix: first
        assert_eq!(s.recorded(), &[(2, 1), (3, 0)]);
    }

    #[test]
    fn replay_consumes_choices_in_order() {
        let mut s = Strategy::replay(vec![1, 2, 7]);
        assert_eq!(s.choose(&[0, 1], None), 1);
        assert_eq!(s.choose(&[0, 1, 2], None), 2);
        assert_eq!(s.choose(&[0, 1], None), 1); // 7 clamped into range
    }
}
