//! A RocksDB-like key-value substrate for the paper's database experiments.
//!
//! The BRAVO paper evaluates two RocksDB benchmarks (Figures 5 and 6). What
//! those benchmarks actually stress is not the LSM storage engine but two
//! specific reader-writer-lock-protected structures, which this crate
//! rebuilds:
//!
//! * [`memtable`] — the in-memory write buffer whose `GetLock` is hammered
//!   by `::Get()` calls in the `readwhilewriting` benchmark (the paper runs
//!   it with `--inplace_update_support=1 --inplace_update_num_locks=1`, i.e.
//!   a single reader-writer lock guarding in-place value updates).
//! * [`hash_cache`] — the persistent cache's hash table: a hash map behind
//!   one reader-writer lock, exercised by `hash_table_bench` with one
//!   inserter thread, one eraser thread and `T` reader threads.
//! * [`db`] — a `Get`/`Put`/`Delete` façade over `shards=N` key-hashed
//!   memtables (one by default), used by the `bravod` server and the
//!   runnable examples; batched forms (`multi_get`, `write_batch`) amortize
//!   lock acquisitions per wire frame.
//!
//! Every structure takes its lock as a [`rwlocks::LockKind`], so the
//! benchmark harness can sweep the same lock set the paper plots.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod db;
pub mod hash_cache;
pub mod memtable;
pub mod workloads;

pub use db::Db;
pub use hash_cache::{HashCache, KeyHashBuilder, KeyHasher};
pub use memtable::{BatchOp, MemTable};
pub use workloads::{
    run_hash_table_bench, run_readwhilewriting, HashTableBenchResult, ReadWhileWritingResult,
};
