//! The memtable: an in-memory write buffer with a `GetLock` guarding
//! in-place updates.

use std::cell::UnsafeCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use bravo::spec::{LockHandle, LockSpec, SpecError};
use bravo::stats::Snapshot;
use rwlocks::build_lock;

/// A fixed-size value, standing in for RocksDB's small in-place-updatable
/// values.
pub type Value = [u64; 4];

/// The in-memory table: a pre-sized hash map of keys to in-place-updatable
/// values, with reads and in-place writes mediated by the **GetLock** — the
/// reader-writer lock the paper's `readwhilewriting` run contends on
/// (`--inplace_update_num_locks=1` collapses RocksDB's lock striping to a
/// single lock, which is exactly what the figure measures).
pub struct MemTable {
    get_lock: LockHandle,
    /// Key → value map. Guarded by `get_lock` (shared for `get`, exclusive
    /// for mutations), mirroring how RocksDB guards in-place updates.
    data: UnsafeCell<HashMap<u64, Value>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

// SAFETY: `data` is only read while `get_lock` is held shared and only
// mutated while it is held exclusively; the remaining fields are atomics or
// immutable.
unsafe impl Send for MemTable {}
// SAFETY: see above.
unsafe impl Sync for MemTable {}

impl MemTable {
    /// Creates an empty memtable whose GetLock is built from the given
    /// spec (a [`rwlocks::LockKind`] or a parsed [`LockSpec`] both work).
    pub fn new(spec: impl Into<LockSpec>) -> Result<Self, SpecError> {
        Ok(Self {
            get_lock: build_lock(&spec.into())?,
            data: UnsafeCell::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// Creates a memtable pre-populated with keys `0..n`, as `db_bench`
    /// does before the measurement interval (`--num=10000` in the paper's
    /// command line).
    pub fn prepopulated(spec: impl Into<LockSpec>, n: u64) -> Result<Self, SpecError> {
        let table = Self::new(spec)?;
        for key in 0..n {
            table.put(key, [key, key ^ 0xff, 0, 0]);
        }
        Ok(table)
    }

    /// The GetLock handle (label, spec, per-lock statistics).
    pub fn lock(&self) -> &LockHandle {
        &self.get_lock
    }

    /// Display label of the lock guarding this memtable.
    pub fn lock_label(&self) -> &str {
        self.get_lock.label()
    }

    /// The GetLock's statistics snapshot (per-lock under the default
    /// `stats=per-lock` spec).
    pub fn lock_stats(&self) -> Snapshot {
        self.get_lock.snapshot()
    }

    /// Reads the value for `key` (RocksDB `::Get()`), taking the GetLock
    /// shared.
    pub fn get(&self, key: u64) -> Option<Value> {
        self.get_lock.lock_shared();
        // SAFETY: the GetLock is held shared; writers hold it exclusively.
        let value = unsafe { (*self.data.get()).get(&key).copied() };
        self.get_lock.unlock_shared();
        match value {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts or overwrites `key` (RocksDB `::Put()` with in-place update
    /// support), taking the GetLock exclusively.
    pub fn put(&self, key: u64, value: Value) {
        self.get_lock.lock_exclusive();
        // SAFETY: the GetLock is held exclusively.
        unsafe {
            (*self.data.get()).insert(key, value);
        }
        self.get_lock.unlock_exclusive();
    }

    /// Updates `key` in place by applying `f` to the stored value, creating
    /// it as zeroes first if absent. Taking the GetLock exclusively is what
    /// `--inplace_update_support=1` does on the write path.
    pub fn update_in_place(&self, key: u64, f: impl FnOnce(&mut Value)) {
        self.get_lock.lock_exclusive();
        // SAFETY: the GetLock is held exclusively.
        unsafe {
            let entry = (*self.data.get()).entry(key).or_insert([0; 4]);
            f(entry);
        }
        self.get_lock.unlock_exclusive();
    }

    /// Ordered range scan: up to `limit` key/value pairs with `key >=
    /// start`, in ascending key order.
    ///
    /// The GetLock is held **shared for the entire scan** — collection *and*
    /// sorting happen under the lock, like a RocksDB iterator pinning the
    /// memtable — so this is the long reader section the `bravod` Scan
    /// operation uses to stress revocation latency under service traffic.
    pub fn scan(&self, start: u64, limit: usize) -> Vec<(u64, Value)> {
        self.get_lock.lock_shared();
        // SAFETY: the GetLock is held shared; writers hold it exclusively.
        let mut entries: Vec<(u64, Value)> = unsafe {
            (*self.data.get())
                .iter()
                .filter(|(k, _)| **k >= start)
                .map(|(k, v)| (*k, *v))
                .collect()
        };
        entries.sort_unstable_by_key(|(k, _)| *k);
        entries.truncate(limit);
        self.get_lock.unlock_shared();
        entries
    }

    /// Removes `key`, returning the previous value if any.
    pub fn delete(&self, key: u64) -> Option<Value> {
        self.get_lock.lock_exclusive();
        // SAFETY: the GetLock is held exclusively.
        let prev = unsafe { (*self.data.get()).remove(&key) };
        self.get_lock.unlock_exclusive();
        prev
    }

    /// Number of keys currently stored.
    pub fn len(&self) -> usize {
        self.get_lock.lock_shared();
        // SAFETY: the GetLock is held shared.
        let n = unsafe { (*self.data.get()).len() };
        self.get_lock.unlock_shared();
        n
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` counters accumulated by `get`.
    pub fn hit_miss(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

impl std::fmt::Debug for MemTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemTable")
            .field("lock", &self.get_lock.label())
            .field("len", &self.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rwlocks::LockKind;
    use std::sync::Arc;

    #[test]
    fn put_get_delete_round_trip() {
        let t = MemTable::new(LockKind::BravoBa).unwrap();
        assert!(t.is_empty());
        t.put(1, [1, 2, 3, 4]);
        assert_eq!(t.get(1), Some([1, 2, 3, 4]));
        assert_eq!(t.get(2), None);
        assert_eq!(t.delete(1), Some([1, 2, 3, 4]));
        assert_eq!(t.get(1), None);
        assert_eq!(t.hit_miss(), (1, 2));
    }

    #[test]
    fn prepopulation_matches_db_bench() {
        let t = MemTable::prepopulated(LockKind::Ba, 100).unwrap();
        assert_eq!(t.len(), 100);
        assert_eq!(t.get(99).unwrap()[0], 99);
    }

    #[test]
    fn scan_returns_an_ordered_bounded_range() {
        let t = MemTable::prepopulated(LockKind::BravoBa, 32).unwrap();
        let entries = t.scan(10, 5);
        assert_eq!(
            entries.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![10, 11, 12, 13, 14]
        );
        assert_eq!(entries[0].1[0], 10);
        assert!(t.scan(32, 8).is_empty());
        assert_eq!(t.scan(30, 100).len(), 2);
        assert!(t.scan(0, 0).is_empty());
    }

    #[test]
    fn in_place_updates_apply_under_the_write_lock() {
        let t = MemTable::new(LockKind::Pthread).unwrap();
        t.update_in_place(7, |v| v[0] += 1);
        t.update_in_place(7, |v| v[0] += 1);
        assert_eq!(t.get(7).unwrap()[0], 2);
    }

    #[test]
    fn readers_never_observe_torn_values() {
        // The writer always keeps value[0] == value[1]; readers check it.
        for kind in [LockKind::BravoBa, LockKind::Ba, LockKind::BravoPthread] {
            let t = Arc::new(MemTable::prepopulated(kind, 16).unwrap());
            std::thread::scope(|s| {
                let writer = Arc::clone(&t);
                s.spawn(move || {
                    for i in 0..2_000u64 {
                        writer.update_in_place(i % 16, |v| {
                            v[0] = i;
                            v[1] = i;
                        });
                    }
                });
                for _ in 0..3 {
                    let reader = Arc::clone(&t);
                    s.spawn(move || {
                        for i in 0..2_000u64 {
                            if let Some(v) = reader.get(i % 16) {
                                assert_eq!(v[0], v[1], "torn read under {kind}");
                            }
                        }
                    });
                }
            });
        }
    }

    #[test]
    fn works_with_every_lock_in_the_catalog() {
        for &kind in LockKind::all() {
            let t = MemTable::new(kind).unwrap();
            t.put(5, [5; 4]);
            assert_eq!(t.get(5), Some([5; 4]), "broken under {kind}");
        }
    }
}
