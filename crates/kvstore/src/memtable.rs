//! The memtable: an in-memory write buffer with a `GetLock` guarding
//! in-place updates.

use std::cell::UnsafeCell;
use std::collections::HashMap;

use bravo::spec::{LockHandle, LockSpec, SpecError};
use bravo::stats::Snapshot;
use bravo::sync::atomic::{AtomicU64, Ordering};
use rwlocks::build_lock;

/// A fixed-size value, standing in for RocksDB's small in-place-updatable
/// values.
pub type Value = [u64; 4];

/// One write in a batch: the serializable subset of the write API
/// (`WriteBatch` frames carry these over the wire).
///
/// Unlike [`MemTable::update_in_place`], whose merge takes an arbitrary
/// closure, a batched merge carries a concrete delta with fixed semantics —
/// per-word wrapping add — because the op has to round-trip through bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchOp {
    /// Insert or overwrite `key` with `value`.
    Put {
        /// The key to store under.
        key: u64,
        /// The full value to store.
        value: Value,
    },
    /// Add `delta` to the stored value word-by-word (wrapping), creating
    /// the value as zeroes first if absent.
    Merge {
        /// The key to update.
        key: u64,
        /// Per-word wrapping-add delta.
        delta: Value,
    },
    /// Remove `key` if present.
    Delete {
        /// The key to remove.
        key: u64,
    },
}

impl BatchOp {
    /// The key this op touches (what shard routing dispatches on).
    pub fn key(&self) -> u64 {
        match *self {
            BatchOp::Put { key, .. } | BatchOp::Merge { key, .. } | BatchOp::Delete { key } => key,
        }
    }
}

/// The in-memory table: a pre-sized hash map of keys to in-place-updatable
/// values, with reads and in-place writes mediated by the **GetLock** — the
/// reader-writer lock the paper's `readwhilewriting` run contends on
/// (`--inplace_update_num_locks=1` collapses RocksDB's lock striping to a
/// single lock, which is exactly what the figure measures).
pub struct MemTable {
    get_lock: LockHandle,
    /// Key → value map. Guarded by `get_lock` (shared for `get`, exclusive
    /// for mutations), mirroring how RocksDB guards in-place updates.
    data: UnsafeCell<HashMap<u64, Value>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

// SAFETY: `data` is only read while `get_lock` is held shared and only
// mutated while it is held exclusively; the remaining fields are atomics or
// immutable.
unsafe impl Send for MemTable {}
// SAFETY: see above.
unsafe impl Sync for MemTable {}

impl MemTable {
    /// Creates an empty memtable whose GetLock is built from the given
    /// spec (a [`rwlocks::LockKind`] or a parsed [`LockSpec`] both work).
    pub fn new(spec: impl Into<LockSpec>) -> Result<Self, SpecError> {
        Ok(Self {
            get_lock: build_lock(&spec.into())?,
            data: UnsafeCell::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// Creates a memtable pre-populated with keys `0..n`, as `db_bench`
    /// does before the measurement interval (`--num=10000` in the paper's
    /// command line).
    pub fn prepopulated(spec: impl Into<LockSpec>, n: u64) -> Result<Self, SpecError> {
        let table = Self::new(spec)?;
        for key in 0..n {
            table.put(key, [key, key ^ 0xff, 0, 0]);
        }
        Ok(table)
    }

    /// The GetLock handle (label, spec, per-lock statistics).
    pub fn lock(&self) -> &LockHandle {
        &self.get_lock
    }

    /// Display label of the lock guarding this memtable.
    pub fn lock_label(&self) -> &str {
        self.get_lock.label()
    }

    /// The GetLock's statistics snapshot (per-lock under the default
    /// `stats=per-lock` spec).
    pub fn lock_stats(&self) -> Snapshot {
        self.get_lock.snapshot()
    }

    /// Reads the value for `key` (RocksDB `::Get()`), taking the GetLock
    /// shared.
    pub fn get(&self, key: u64) -> Option<Value> {
        self.get_lock.lock_shared();
        // SAFETY: the GetLock is held shared; writers hold it exclusively.
        let value = unsafe { (*self.data.get()).get(&key).copied() };
        self.get_lock.unlock_shared();
        match value {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts or overwrites `key` (RocksDB `::Put()` with in-place update
    /// support), taking the GetLock exclusively.
    pub fn put(&self, key: u64, value: Value) {
        self.get_lock.lock_exclusive();
        // SAFETY: the GetLock is held exclusively.
        unsafe {
            (*self.data.get()).insert(key, value);
        }
        self.get_lock.unlock_exclusive();
    }

    /// Updates `key` in place by applying `f` to the stored value, creating
    /// it as zeroes first if absent. Taking the GetLock exclusively is what
    /// `--inplace_update_support=1` does on the write path.
    pub fn update_in_place(&self, key: u64, f: impl FnOnce(&mut Value)) {
        self.get_lock.lock_exclusive();
        // SAFETY: the GetLock is held exclusively.
        unsafe {
            let entry = (*self.data.get()).entry(key).or_insert([0; 4]);
            f(entry);
        }
        self.get_lock.unlock_exclusive();
    }

    /// Ordered range scan: up to `limit` key/value pairs with `key >=
    /// start`, in ascending key order.
    ///
    /// The GetLock is held **shared for the entire scan** — collection *and*
    /// sorting happen under the lock, like a RocksDB iterator pinning the
    /// memtable — so this is the long reader section the `bravod` Scan
    /// operation uses to stress revocation latency under service traffic.
    pub fn scan(&self, start: u64, limit: usize) -> Vec<(u64, Value)> {
        self.get_lock.lock_shared();
        // SAFETY: the GetLock is held shared; writers hold it exclusively.
        let mut entries: Vec<(u64, Value)> = unsafe {
            (*self.data.get())
                .iter()
                .filter(|(k, _)| **k >= start)
                .map(|(k, v)| (*k, *v))
                .collect()
        };
        entries.sort_unstable_by_key(|(k, _)| *k);
        entries.truncate(limit);
        self.get_lock.unlock_shared();
        entries
    }

    /// Reads many keys under **one** shared GetLock acquisition, returning
    /// the values in input order. This is the lock-amortization primitive
    /// behind the wire protocol's `MultiGet`: N point reads cost one
    /// fast-path read instead of N.
    pub fn get_batch(&self, keys: &[u64]) -> Vec<Option<Value>> {
        if keys.is_empty() {
            return Vec::new();
        }
        let mut values = vec![None; keys.len()];
        self.get_batch_into(keys.iter().copied().enumerate(), &mut values);
        values
    }

    /// Looks up each `(slot, key)` request under **one** shared GetLock
    /// acquisition, storing the answer at `out[slot]`. The allocation-free
    /// core of [`MemTable::get_batch`]; the sharded `Db` uses it to scatter
    /// one `MultiGet` frame's answers straight into the caller's output
    /// without per-shard scratch vectors.
    pub fn get_batch_into(
        &self,
        requests: impl Iterator<Item = (usize, u64)>,
        out: &mut [Option<Value>],
    ) {
        let mut hits = 0u64;
        let mut misses = 0u64;
        self.get_lock.lock_shared();
        // SAFETY: the GetLock is held shared; writers hold it exclusively.
        unsafe {
            let data = &*self.data.get();
            for (slot, key) in requests {
                let value = data.get(&key).copied();
                match value {
                    Some(_) => hits += 1,
                    None => misses += 1,
                }
                out[slot] = value;
            }
        }
        self.get_lock.unlock_shared();
        self.hits.fetch_add(hits, Ordering::Relaxed);
        self.misses.fetch_add(misses, Ordering::Relaxed);
    }

    /// Applies a batch of writes in order under **one** exclusive GetLock
    /// acquisition (the `WriteBatch` counterpart of [`MemTable::get_batch`]).
    pub fn apply_batch(&self, ops: &[BatchOp]) {
        if ops.is_empty() {
            return;
        }
        self.apply_batch_from(ops.iter().copied());
    }

    /// Applies every op the iterator yields, in order, under **one**
    /// exclusive GetLock acquisition. The iterator is consumed *inside* the
    /// critical section, so callers must hand over ready-made ops (the
    /// sharded `Db` feeds each shard its slice of a `WriteBatch` without
    /// building per-shard vectors). Must not be called with a known-empty
    /// iterator — use [`MemTable::apply_batch`] when emptiness is possible.
    pub fn apply_batch_from(&self, ops: impl Iterator<Item = BatchOp>) {
        self.get_lock.lock_exclusive();
        // SAFETY: the GetLock is held exclusively.
        unsafe {
            let data = &mut *self.data.get();
            for op in ops {
                match op {
                    BatchOp::Put { key, value } => {
                        data.insert(key, value);
                    }
                    BatchOp::Merge { key, delta } => {
                        let entry = data.entry(key).or_insert([0; 4]);
                        for (word, d) in entry.iter_mut().zip(delta) {
                            *word = word.wrapping_add(d);
                        }
                    }
                    BatchOp::Delete { key } => {
                        data.remove(&key);
                    }
                }
            }
        }
        self.get_lock.unlock_exclusive();
    }

    /// Removes `key`, returning the previous value if any.
    pub fn delete(&self, key: u64) -> Option<Value> {
        self.get_lock.lock_exclusive();
        // SAFETY: the GetLock is held exclusively.
        let prev = unsafe { (*self.data.get()).remove(&key) };
        self.get_lock.unlock_exclusive();
        prev
    }

    /// Number of keys currently stored.
    pub fn len(&self) -> usize {
        self.get_lock.lock_shared();
        // SAFETY: the GetLock is held shared.
        let n = unsafe { (*self.data.get()).len() };
        self.get_lock.unlock_shared();
        n
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` counters accumulated by `get`.
    pub fn hit_miss(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

impl std::fmt::Debug for MemTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemTable")
            .field("lock", &self.get_lock.label())
            .field("len", &self.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rwlocks::LockKind;
    use std::sync::Arc;

    #[test]
    fn put_get_delete_round_trip() {
        let t = MemTable::new(LockKind::BravoBa).unwrap();
        assert!(t.is_empty());
        t.put(1, [1, 2, 3, 4]);
        assert_eq!(t.get(1), Some([1, 2, 3, 4]));
        assert_eq!(t.get(2), None);
        assert_eq!(t.delete(1), Some([1, 2, 3, 4]));
        assert_eq!(t.get(1), None);
        assert_eq!(t.hit_miss(), (1, 2));
    }

    #[test]
    fn prepopulation_matches_db_bench() {
        let t = MemTable::prepopulated(LockKind::Ba, 100).unwrap();
        assert_eq!(t.len(), 100);
        assert_eq!(t.get(99).unwrap()[0], 99);
    }

    #[test]
    fn scan_returns_an_ordered_bounded_range() {
        let t = MemTable::prepopulated(LockKind::BravoBa, 32).unwrap();
        let entries = t.scan(10, 5);
        assert_eq!(
            entries.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![10, 11, 12, 13, 14]
        );
        assert_eq!(entries[0].1[0], 10);
        assert!(t.scan(32, 8).is_empty());
        assert_eq!(t.scan(30, 100).len(), 2);
        assert!(t.scan(0, 0).is_empty());
    }

    #[test]
    fn in_place_updates_apply_under_the_write_lock() {
        let t = MemTable::new(LockKind::Pthread).unwrap();
        t.update_in_place(7, |v| v[0] += 1);
        t.update_in_place(7, |v| v[0] += 1);
        assert_eq!(t.get(7).unwrap()[0], 2);
    }

    #[test]
    fn readers_never_observe_torn_values() {
        // The writer always keeps value[0] == value[1]; readers check it.
        for kind in [LockKind::BravoBa, LockKind::Ba, LockKind::BravoPthread] {
            let t = Arc::new(MemTable::prepopulated(kind, 16).unwrap());
            std::thread::scope(|s| {
                let writer = Arc::clone(&t);
                s.spawn(move || {
                    for i in 0..2_000u64 {
                        writer.update_in_place(i % 16, |v| {
                            v[0] = i;
                            v[1] = i;
                        });
                    }
                });
                for _ in 0..3 {
                    let reader = Arc::clone(&t);
                    s.spawn(move || {
                        for i in 0..2_000u64 {
                            if let Some(v) = reader.get(i % 16) {
                                assert_eq!(v[0], v[1], "torn read under {kind}");
                            }
                        }
                    });
                }
            });
        }
    }

    #[test]
    fn get_batch_returns_values_in_input_order_and_counts_hits() {
        let t = MemTable::prepopulated(LockKind::BravoBa, 8).unwrap();
        let before = t.lock_stats();
        let values = t.get_batch(&[3, 100, 0, 3]);
        assert_eq!(values.len(), 4);
        assert_eq!(values[0].unwrap()[0], 3);
        assert_eq!(values[1], None);
        assert_eq!(values[2].unwrap()[0], 0);
        assert_eq!(values[3], values[0]);
        assert_eq!(t.hit_miss(), (3, 1));
        // One batch, one lock acquisition: the whole point.
        let delta = t.lock_stats().since(&before);
        assert_eq!(delta.total_reads(), 1, "get_batch took more than one read");
        assert!(t.get_batch(&[]).is_empty());
    }

    #[test]
    fn apply_batch_applies_in_order_under_one_write_acquisition() {
        let t = MemTable::new(LockKind::BravoBa).unwrap();
        let before = t.lock_stats();
        t.apply_batch(&[
            BatchOp::Put {
                key: 1,
                value: [10, 0, 0, 0],
            },
            BatchOp::Merge {
                key: 1,
                delta: [5, u64::MAX, 0, 0],
            },
            BatchOp::Put {
                key: 2,
                value: [2; 4],
            },
            BatchOp::Delete { key: 2 },
            BatchOp::Merge {
                key: 3,
                delta: [7, 0, 0, 0],
            },
        ]);
        // Merge is a wrapping per-word add over the put value...
        assert_eq!(t.get(1), Some([15, u64::MAX, 0, 0]));
        // ...delete lands after the put in the same batch...
        assert_eq!(t.get(2), None);
        // ...and a merge on an absent key starts from zeroes.
        assert_eq!(t.get(3), Some([7, 0, 0, 0]));
        let delta = t.lock_stats().since(&before);
        assert_eq!(delta.writes, 1, "apply_batch took more than one write");
        t.apply_batch(&[]); // empty batches are free
        assert_eq!(t.lock_stats().since(&before).writes, 1);
    }

    #[test]
    fn works_with_every_lock_in_the_catalog() {
        for &kind in LockKind::all() {
            let t = MemTable::new(kind).unwrap();
            t.put(5, [5; 4]);
            assert_eq!(t.get(5), Some([5; 4]), "broken under {kind}");
        }
    }
}
