//! A small `Get`/`Put`/`Delete` façade over one or more memtable shards,
//! used by the server and the runnable examples.

use bravo::hash::key_shard;
use bravo::spec::{LockHandle, LockSpec, SpecError};
use bravo::stats::Snapshot;

use crate::memtable::{BatchOp, MemTable, Value};

/// A minimal key-value store: `shards=N` key-hashed memtables (one by
/// default), each guarded by its own GetLock built from the same spec.
///
/// This is deliberately tiny — the point of the reproduction is the lock
/// behaviour, not LSM compaction — but it gives the examples, server and
/// integration tests a realistic read-mostly API surface: point reads,
/// point writes, read-modify-writes, deletes, range scans and the batched
/// forms ([`Db::multi_get`], [`Db::write_batch`]) that amortize lock
/// acquisitions.
///
/// # Sharding
///
/// The spec's `shards=N` knob (see [`LockSpec::shards`]) partitions the key
/// space over N independent [`MemTable`]s; a key's owning shard is
/// [`bravo::hash::key_shard`] — the same hash the [`crate::HashCache`]
/// stripes with, exported from one place so routing and striping cannot
/// diverge. `shards=1` (the default) keeps today's single-memtable,
/// single-GetLock layout. Point operations touch exactly one shard;
/// cross-shard operations ([`Db::scan`], [`Db::multi_get`],
/// [`Db::write_batch`]) take each shard's lock separately — see each
/// method's consistency contract.
pub struct Db {
    shards: Box<[MemTable]>,
}

impl Db {
    /// Opens an empty store using the given lock spec (a
    /// [`rwlocks::LockKind`] or a parsed [`LockSpec`] both work); the
    /// spec's `shards=N` knob selects how many key-hashed memtable shards
    /// to build, each with its own GetLock from the same spec.
    pub fn open(spec: impl Into<LockSpec>) -> Result<Self, SpecError> {
        let spec = spec.into();
        let shards = (0..spec.shards())
            .map(|_| MemTable::new(spec.clone()))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            shards: shards.into_boxed_slice(),
        })
    }

    /// Opens a store pre-loaded with keys `0..n` (handy for read-mostly
    /// benchmarks and examples), each key routed to its owning shard.
    pub fn open_prepopulated(spec: impl Into<LockSpec>, n: u64) -> Result<Self, SpecError> {
        let db = Self::open(spec)?;
        for key in 0..n {
            db.put(key, [key, key ^ 0xff, 0, 0]);
        }
        Ok(db)
    }

    /// The shard owning `key`.
    fn shard(&self, key: u64) -> &MemTable {
        &self.shards[key_shard(key, self.shards.len())]
    }

    /// Reads the value stored for `key`.
    pub fn get(&self, key: u64) -> Option<Value> {
        self.shard(key).get(key)
    }

    /// Stores `value` for `key`.
    pub fn put(&self, key: u64, value: Value) {
        self.shard(key).put(key, value);
    }

    /// Atomically applies `f` to the value stored for `key` (zero-initialized
    /// if absent).
    pub fn merge(&self, key: u64, f: impl FnOnce(&mut Value)) {
        self.shard(key).update_in_place(key, f);
    }

    /// Removes `key`; returns whether it was present.
    pub fn delete(&self, key: u64) -> bool {
        self.shard(key).delete(key).is_some()
    }

    /// Ordered range scan: up to `limit` pairs with `key >= start`.
    ///
    /// # Consistency
    ///
    /// Each shard is scanned under its own shared GetLock (collect + sort
    /// under the lock, see [`MemTable::scan`]), then the per-shard results
    /// are merged, re-sorted and truncated *outside* any lock. The result
    /// is therefore a **per-shard snapshot**: atomic within each shard, but
    /// not a point-in-time view across shards — a concurrent writer may
    /// land between two shard scans, so a cross-shard scan can observe
    /// shard A before a batch and shard B after it. With `shards=1` the
    /// scan is a single atomic snapshot, exactly today's behaviour.
    pub fn scan(&self, start: u64, limit: usize) -> Vec<(u64, Value)> {
        match &*self.shards {
            [single] => single.scan(start, limit),
            shards => {
                // Each shard contributes at most its own `limit` smallest
                // qualifying keys, which is a superset of the merged top
                // `limit`, so per-shard truncation loses nothing.
                let mut entries = Vec::new();
                for shard in shards {
                    entries.extend(shard.scan(start, limit));
                }
                entries.sort_unstable_by_key(|(k, _)| *k);
                entries.truncate(limit);
                entries
            }
        }
    }

    /// Reads many keys, taking each owning shard's GetLock **once** (the
    /// serving-path payoff of sharding: a `MultiGet` frame costs one lock
    /// acquisition per touched shard, not one per key). Values come back in
    /// input order; duplicate keys are each answered.
    ///
    /// Like [`Db::scan`], the result is atomic per shard but not across
    /// shards.
    pub fn multi_get(&self, keys: &[u64]) -> Vec<Option<Value>> {
        match &*self.shards {
            [single] => single.get_batch(keys),
            shards => {
                let mut out = vec![None; keys.len()];
                // Group positions per shard by sorting one (shard, pos)
                // index — batches are small, so this costs far less than
                // per-shard scratch vectors (this path runs once per
                // MultiGet frame on the serving hot path). Each run then
                // scatters straight into `out` under one acquisition of
                // its shard's GetLock.
                let mut tagged: Vec<(u32, u32)> = keys
                    .iter()
                    .enumerate()
                    .map(|(pos, &key)| (key_shard(key, shards.len()) as u32, pos as u32))
                    .collect();
                tagged.sort_unstable();
                for run in shard_runs(&tagged) {
                    shards[run[0].0 as usize].get_batch_into(
                        run.iter()
                            .map(|&(_, pos)| (pos as usize, keys[pos as usize])),
                        &mut out,
                    );
                }
                out
            }
        }
    }

    /// Applies a batch of writes, taking each owning shard's GetLock
    /// **once**; returns the number of ops applied (always `ops.len()`).
    ///
    /// Ops for the same shard — in particular, ops on the same key — apply
    /// in batch order under one exclusive hold. Ops on different shards
    /// apply under separate locks with no cross-shard atomicity: a
    /// concurrent reader may observe one shard's portion of the batch
    /// before another's.
    pub fn write_batch(&self, ops: &[BatchOp]) -> usize {
        match &*self.shards {
            [single] => single.apply_batch(ops),
            shards => {
                // Same one-sort grouping as `multi_get`; the (shard, pos)
                // pairs are unique, so the unstable sort preserves batch
                // order within each shard.
                let mut tagged: Vec<(u32, u32)> = ops
                    .iter()
                    .enumerate()
                    .map(|(pos, op)| (key_shard(op.key(), shards.len()) as u32, pos as u32))
                    .collect();
                tagged.sort_unstable();
                for run in shard_runs(&tagged) {
                    shards[run[0].0 as usize]
                        .apply_batch_from(run.iter().map(|&(_, pos)| ops[pos as usize]));
                }
            }
        }
        ops.len()
    }

    /// Number of live keys (summed across shards; each shard counted under
    /// its own shared lock).
    pub fn len(&self) -> usize {
        self.shards.iter().map(MemTable::len).sum()
    }

    /// Whether the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(MemTable::is_empty)
    }

    /// Number of memtable shards (the spec's `shards=N`).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The memtable shards, in shard order (for per-shard instrumentation
    /// and the scan-consistency tests).
    pub fn memtables(&self) -> &[MemTable] {
        &self.shards
    }

    /// Display label of the GetLock spec (every shard shares it).
    pub fn lock_label(&self) -> &str {
        self.shards[0].lock_label()
    }

    /// A GetLock handle carrying the spec (shard 0's — all shards are built
    /// from the same spec), for relabelling in per-connection logs.
    pub fn lock(&self) -> &LockHandle {
        self.shards[0].lock()
    }

    /// Aggregate GetLock statistics: the element-wise sum of every shard's
    /// snapshot, so `fast_read_pct` attribution survives sharding (reads
    /// served by any shard's fast path count as fast reads of the store).
    pub fn lock_stats(&self) -> Snapshot {
        self.shards
            .iter()
            .map(MemTable::lock_stats)
            .reduce(|a, b| a.merged(&b))
            .expect("a Db always has at least one shard")
    }
}

/// Iterates the maximal runs of a shard-sorted `(shard, pos)` index that
/// share one shard tag (a 1.75-compatible `chunk_by`). Every yielded run
/// is non-empty.
fn shard_runs(tagged: &[(u32, u32)]) -> impl Iterator<Item = &[(u32, u32)]> {
    let mut rest = tagged;
    std::iter::from_fn(move || {
        let shard = rest.first()?.0;
        let len = rest.iter().take_while(|t| t.0 == shard).count();
        let (run, tail) = rest.split_at(len);
        rest = tail;
        Some(run)
    })
}

impl std::fmt::Debug for Db {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Db")
            .field("lock", &self.lock_label())
            .field("shards", &self.shards.len())
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bravo::spec::LockSpec;
    use rwlocks::LockKind;
    use std::sync::Arc;

    fn sharded(shards: usize) -> LockSpec {
        LockKind::BravoBa.spec().with_shards(shards)
    }

    #[test]
    fn crud_round_trip() {
        let db = Db::open(LockKind::BravoBa).unwrap();
        assert!(db.is_empty());
        db.put(10, [1; 4]);
        assert_eq!(db.get(10), Some([1; 4]));
        db.merge(10, |v| v[0] = 99);
        assert_eq!(db.get(10).unwrap()[0], 99);
        assert!(db.delete(10));
        assert!(!db.delete(10));
        assert!(db.get(10).is_none());
    }

    #[test]
    fn crud_round_trip_survives_sharding() {
        let db = Db::open(sharded(7)).unwrap();
        assert_eq!(db.shards(), 7);
        for key in 0..64u64 {
            db.put(key, [key; 4]);
        }
        assert_eq!(db.len(), 64);
        for key in 0..64u64 {
            assert_eq!(db.get(key), Some([key; 4]));
            db.merge(key, |v| v[1] = key + 1);
            assert_eq!(db.get(key).unwrap()[1], key + 1);
        }
        for key in 0..64u64 {
            assert!(db.delete(key));
        }
        assert!(db.is_empty());
    }

    #[test]
    fn prepopulation_routes_keys_to_their_owning_shards() {
        let db = Db::open_prepopulated(sharded(4), 100).unwrap();
        assert_eq!(db.len(), 100);
        assert_eq!(db.get(99).unwrap()[0], 99);
        // Every shard got some of the sequential key range: the router
        // hashes keys rather than splitting by range.
        assert!(db.memtables().iter().all(|t| !t.is_empty()));
        // And each key sits in exactly the shard key_shard names.
        for key in 0..100u64 {
            let owner = bravo::hash::key_shard(key, db.shards());
            assert!(db.memtables()[owner].get(key).is_some());
        }
    }

    #[test]
    fn scan_passes_through_to_the_memtable() {
        let db = Db::open_prepopulated(LockKind::BravoBa, 16).unwrap();
        let entries = db.scan(12, 8);
        assert_eq!(
            entries.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![12, 13, 14, 15]
        );
    }

    #[test]
    fn sharded_scan_merges_to_the_same_ordered_view() {
        let flat = Db::open_prepopulated(LockKind::BravoBa, 64).unwrap();
        let db = Db::open_prepopulated(sharded(8), 64).unwrap();
        for (start, limit) in [
            (0u64, 64usize),
            (0, 10),
            (12, 8),
            (60, 100),
            (64, 8),
            (0, 0),
        ] {
            assert_eq!(
                db.scan(start, limit),
                flat.scan(start, limit),
                "scan({start}, {limit}) diverged under sharding"
            );
        }
    }

    #[test]
    fn multi_get_answers_in_input_order_across_shards() {
        let db = Db::open_prepopulated(sharded(4), 32).unwrap();
        let keys = [31u64, 0, 500, 7, 7, 16];
        let values = db.multi_get(&keys);
        assert_eq!(values.len(), keys.len());
        for (key, value) in keys.iter().zip(&values) {
            assert_eq!(*value, db.get(*key), "multi_get({key}) diverged from get");
        }
        assert_eq!(values[3], values[4], "duplicate keys both answered");
        assert!(db.multi_get(&[]).is_empty());
    }

    #[test]
    fn write_batch_applies_everything_with_per_key_ordering() {
        let db = Db::open(sharded(4)).unwrap();
        let mut ops = Vec::new();
        for key in 0..32u64 {
            ops.push(BatchOp::Put {
                key,
                value: [key, 0, 0, 0],
            });
            ops.push(BatchOp::Merge {
                key,
                delta: [1, 0, 0, 0],
            });
        }
        ops.push(BatchOp::Delete { key: 0 });
        assert_eq!(db.write_batch(&ops), ops.len());
        assert_eq!(db.get(0), None, "delete must land after the put+merge");
        for key in 1..32u64 {
            assert_eq!(db.get(key).unwrap()[0], key + 1);
        }
    }

    #[test]
    fn lock_stats_aggregate_across_shards() {
        let db = Db::open(sharded(8)).unwrap();
        for key in 0..64u64 {
            db.put(key, [key; 4]);
            db.get(key);
        }
        let stats = db.lock_stats();
        assert_eq!(stats.writes, 64, "all shard writes must aggregate");
        assert_eq!(stats.total_reads(), 64, "all shard reads must aggregate");
        // The aggregate is the sum of the per-shard views.
        let summed: u64 = db.memtables().iter().map(|t| t.lock_stats().writes).sum();
        assert_eq!(stats.writes, summed);
    }

    #[test]
    fn concurrent_readers_with_one_writer() {
        let db = Arc::new(Db::open_prepopulated(LockKind::BravoPthread, 64).unwrap());
        std::thread::scope(|s| {
            let w = Arc::clone(&db);
            s.spawn(move || {
                for i in 0..1_000u64 {
                    w.merge(i % 64, |v| v[3] += 1);
                }
            });
            for _ in 0..3 {
                let r = Arc::clone(&db);
                s.spawn(move || {
                    for i in 0..1_000u64 {
                        assert!(r.get(i % 64).is_some());
                    }
                });
            }
        });
        assert_eq!(db.len(), 64);
    }
}
