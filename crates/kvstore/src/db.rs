//! A small `Get`/`Put`/`Delete` façade over the memtable, used by the
//! runnable examples.

use bravo::spec::{LockSpec, SpecError};

use crate::memtable::{MemTable, Value};

/// A minimal key-value store: a single memtable whose GetLock algorithm is
/// chosen at construction time.
///
/// This is deliberately tiny — the point of the reproduction is the lock
/// behaviour, not LSM compaction — but it gives the examples and
/// integration tests a realistic read-mostly API surface: point reads,
/// point writes, read-modify-writes and deletes.
pub struct Db {
    memtable: MemTable,
}

impl Db {
    /// Opens an empty store using the given lock spec for the memtable
    /// GetLock (a [`rwlocks::LockKind`] or a parsed [`LockSpec`] both
    /// work).
    pub fn open(spec: impl Into<LockSpec>) -> Result<Self, SpecError> {
        Ok(Self {
            memtable: MemTable::new(spec)?,
        })
    }

    /// Opens a store pre-loaded with keys `0..n` (handy for read-mostly
    /// benchmarks and examples).
    pub fn open_prepopulated(spec: impl Into<LockSpec>, n: u64) -> Result<Self, SpecError> {
        Ok(Self {
            memtable: MemTable::prepopulated(spec, n)?,
        })
    }

    /// Reads the value stored for `key`.
    pub fn get(&self, key: u64) -> Option<Value> {
        self.memtable.get(key)
    }

    /// Stores `value` for `key`.
    pub fn put(&self, key: u64, value: Value) {
        self.memtable.put(key, value);
    }

    /// Atomically applies `f` to the value stored for `key` (zero-initialized
    /// if absent).
    pub fn merge(&self, key: u64, f: impl FnOnce(&mut Value)) {
        self.memtable.update_in_place(key, f);
    }

    /// Removes `key`; returns whether it was present.
    pub fn delete(&self, key: u64) -> bool {
        self.memtable.delete(key).is_some()
    }

    /// Ordered range scan: up to `limit` pairs with `key >= start`, holding
    /// the GetLock shared for the whole scan (see [`MemTable::scan`]).
    pub fn scan(&self, start: u64, limit: usize) -> Vec<(u64, Value)> {
        self.memtable.scan(start, limit)
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.memtable.len()
    }

    /// Whether the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.memtable.is_empty()
    }

    /// The underlying memtable (for instrumentation).
    pub fn memtable(&self) -> &MemTable {
        &self.memtable
    }
}

impl std::fmt::Debug for Db {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Db")
            .field("memtable", &self.memtable)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rwlocks::LockKind;
    use std::sync::Arc;

    #[test]
    fn crud_round_trip() {
        let db = Db::open(LockKind::BravoBa).unwrap();
        assert!(db.is_empty());
        db.put(10, [1; 4]);
        assert_eq!(db.get(10), Some([1; 4]));
        db.merge(10, |v| v[0] = 99);
        assert_eq!(db.get(10).unwrap()[0], 99);
        assert!(db.delete(10));
        assert!(!db.delete(10));
        assert!(db.get(10).is_none());
    }

    #[test]
    fn scan_passes_through_to_the_memtable() {
        let db = Db::open_prepopulated(LockKind::BravoBa, 16).unwrap();
        let entries = db.scan(12, 8);
        assert_eq!(
            entries.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![12, 13, 14, 15]
        );
    }

    #[test]
    fn concurrent_readers_with_one_writer() {
        let db = Arc::new(Db::open_prepopulated(LockKind::BravoPthread, 64).unwrap());
        std::thread::scope(|s| {
            let w = Arc::clone(&db);
            s.spawn(move || {
                for i in 0..1_000u64 {
                    w.merge(i % 64, |v| v[3] += 1);
                }
            });
            for _ in 0..3 {
                let r = Arc::clone(&db);
                s.spawn(move || {
                    for i in 0..1_000u64 {
                        assert!(r.get(i % 64).is_some());
                    }
                });
            }
        });
        assert_eq!(db.len(), 64);
    }
}
