//! Workload drivers for the two RocksDB benchmarks in the paper.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bravo::spec::{LockSpec, SpecError};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::hash_cache::{CacheEntry, HashCache};
use crate::memtable::MemTable;

/// Result of one `readwhilewriting` run (Figure 5).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadWhileWritingResult {
    /// Completed `Get` operations across all reader threads.
    pub reads: u64,
    /// Completed in-place `Put` operations by the writer thread.
    pub writes: u64,
}

impl ReadWhileWritingResult {
    /// Total operations per second over `duration`.
    pub fn ops_per_sec(&self, duration: Duration) -> f64 {
        (self.reads + self.writes) as f64 / duration.as_secs_f64()
    }
}

/// Runs the `readwhilewriting` workload: `readers` threads issuing `Get`s on
/// random keys while one writer performs in-place updates, all contending on
/// the memtable's single GetLock, for `duration`.
///
/// `num_keys` corresponds to `db_bench --num` (the paper uses 10 000).
pub fn run_readwhilewriting(
    spec: impl Into<LockSpec>,
    readers: usize,
    num_keys: u64,
    duration: Duration,
) -> Result<ReadWhileWritingResult, SpecError> {
    let table = Arc::new(MemTable::prepopulated(spec, num_keys)?);
    let stop = Arc::new(AtomicBool::new(false));
    let reads = Arc::new(AtomicU64::new(0));
    let writes = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        // The single writer thread (`readwhilewriting` has exactly one).
        {
            let table = Arc::clone(&table);
            let stop = Arc::clone(&stop);
            let writes = Arc::clone(&writes);
            s.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(0x5eed_0001);
                let mut local = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let key = rng.gen_range(0..num_keys);
                    table.update_in_place(key, |v| {
                        v[0] = v[0].wrapping_add(1);
                        v[1] = v[0];
                    });
                    local += 1;
                }
                writes.fetch_add(local, Ordering::Relaxed);
            });
        }
        for t in 0..readers {
            let table = Arc::clone(&table);
            let stop = Arc::clone(&stop);
            let reads = Arc::clone(&reads);
            s.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(t as u64 + 1);
                let mut local = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let key = rng.gen_range(0..num_keys);
                    let value = table.get(key);
                    debug_assert!(value.is_some());
                    local += 1;
                }
                reads.fetch_add(local, Ordering::Relaxed);
            });
        }
        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
    });

    Ok(ReadWhileWritingResult {
        reads: reads.load(Ordering::Relaxed),
        writes: writes.load(Ordering::Relaxed),
    })
}

/// Result of one `hash_table_bench` run (Figure 6).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HashTableBenchResult {
    /// Completed lookups across all reader threads.
    pub reads: u64,
    /// Completed insertions by the inserter thread.
    pub inserts: u64,
    /// Completed erases by the eraser thread.
    pub erases: u64,
}

impl HashTableBenchResult {
    /// Aggregate operations per millisecond (the unit the benchmark reports).
    pub fn ops_per_msec(&self, duration: Duration) -> f64 {
        (self.reads + self.inserts + self.erases) as f64 / duration.as_millis().max(1) as f64
    }
}

/// Runs `hash_table_bench`: one dedicated inserter, one dedicated eraser and
/// `readers` lookup threads over a shared hash table behind a single
/// reader-writer lock, for `duration`.
pub fn run_hash_table_bench(
    spec: impl Into<LockSpec>,
    readers: usize,
    key_space: u64,
    duration: Duration,
) -> Result<HashTableBenchResult, SpecError> {
    let cache = Arc::new(HashCache::prepopulated(spec, key_space)?);
    let stop = Arc::new(AtomicBool::new(false));
    let reads = Arc::new(AtomicU64::new(0));
    let inserts = Arc::new(AtomicU64::new(0));
    let erases = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        {
            let cache = Arc::clone(&cache);
            let stop = Arc::clone(&stop);
            let inserts = Arc::clone(&inserts);
            s.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(0xadd);
                let mut local = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let key = rng.gen_range(0..key_space * 2);
                    cache.insert(
                        key,
                        CacheEntry {
                            offset: key * 4096,
                            size: 4096,
                        },
                    );
                    local += 1;
                }
                inserts.fetch_add(local, Ordering::Relaxed);
            });
        }
        {
            let cache = Arc::clone(&cache);
            let stop = Arc::clone(&stop);
            let erases = Arc::clone(&erases);
            s.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(0xde1e7e);
                let mut local = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let key = rng.gen_range(0..key_space * 2);
                    cache.erase(key);
                    local += 1;
                }
                erases.fetch_add(local, Ordering::Relaxed);
            });
        }
        for t in 0..readers {
            let cache = Arc::clone(&cache);
            let stop = Arc::clone(&stop);
            let reads = Arc::clone(&reads);
            s.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(0x1000 + t as u64);
                let mut local = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let key = rng.gen_range(0..key_space * 2);
                    if let Some(entry) = cache.lookup(key) {
                        debug_assert_eq!(entry.offset, key * 4096);
                    }
                    local += 1;
                }
                reads.fetch_add(local, Ordering::Relaxed);
            });
        }
        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
    });

    Ok(HashTableBenchResult {
        reads: reads.load(Ordering::Relaxed),
        inserts: inserts.load(Ordering::Relaxed),
        erases: erases.load(Ordering::Relaxed),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rwlocks::LockKind;

    #[test]
    fn readwhilewriting_makes_progress_on_bravo_and_ba() {
        for kind in [LockKind::Ba, LockKind::BravoBa] {
            let r = run_readwhilewriting(kind, 2, 1_000, Duration::from_millis(100)).unwrap();
            assert!(r.reads > 0, "{kind}: no reads");
            assert!(r.writes > 0, "{kind}: no writes");
            assert!(r.ops_per_sec(Duration::from_millis(100)) > 0.0);
        }
    }

    #[test]
    fn hash_table_bench_makes_progress() {
        let r = run_hash_table_bench(LockKind::BravoPthread, 2, 512, Duration::from_millis(100))
            .unwrap();
        assert!(r.reads > 0);
        assert!(r.inserts > 0);
        assert!(r.erases > 0);
        assert!(r.ops_per_msec(Duration::from_millis(100)) > 0.0);
    }

    #[test]
    fn read_dominance_holds_with_many_readers() {
        // With several reader threads and one writer, reads dominate the
        // operation mix — the regime Figure 5 targets.
        let r =
            run_readwhilewriting(LockKind::BravoBa, 3, 1_000, Duration::from_millis(150)).unwrap();
        assert!(r.reads > r.writes);
    }
}
