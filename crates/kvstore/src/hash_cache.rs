//! The persistent-cache hash table: a hash map behind one reader-writer
//! lock, as stressed by RocksDB's `hash_table_bench`.

use std::cell::UnsafeCell;
use std::collections::HashMap;

use bravo::spec::{LockHandle, LockSpec, SpecError};
use bravo::stats::Snapshot;
use rwlocks::build_lock;

/// A cache entry, standing in for the block-cache metadata RocksDB stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheEntry {
    /// Where the cached block lives in the (simulated) cache file.
    pub offset: u64,
    /// Size of the cached block.
    pub size: u32,
}

/// The cache's key-hash: a [`std::hash::BuildHasher`] driving the bucket
/// striping with [`bravo::hash::key_hash`] — the **same** function the
/// sharded [`crate::Db`] routes keys with (via [`bravo::hash::key_shard`]).
/// The hash is exported from one place (`bravo::hash`) precisely so cache
/// striping and shard routing cannot silently diverge.
#[derive(Debug, Default, Clone, Copy)]
pub struct KeyHashBuilder;

impl std::hash::BuildHasher for KeyHashBuilder {
    type Hasher = KeyHasher;

    fn build_hasher(&self) -> KeyHasher {
        KeyHasher(0)
    }
}

/// Streaming adapter over [`bravo::hash::key_hash`]. Cache keys are `u64`,
/// so `write_u64` is the only hot path; the byte fallback folds 8-byte
/// chunks through the same mix so composite keys stay well-dispersed.
#[derive(Debug)]
pub struct KeyHasher(u64);

impl std::hash::Hasher for KeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.0 = bravo::hash::key_hash(self.0 ^ u64::from_le_bytes(word));
        }
    }

    fn write_u64(&mut self, key: u64) {
        self.0 = bravo::hash::key_hash(self.0 ^ key);
    }
}

/// A central hash table protected by a single reader-writer lock — the
/// structure `hash_table_bench` measures (`std::unordered_map` plus a
/// reader-writer lock in RocksDB's persistent cache).
pub struct HashCache {
    lock: LockHandle,
    /// Key → entry map, bucketed by [`KeyHashBuilder`]. Guarded by `lock`.
    map: UnsafeCell<HashMap<u64, CacheEntry, KeyHashBuilder>>,
}

// SAFETY: `map` is only read under shared permission and only mutated under
// exclusive permission on `lock`.
unsafe impl Send for HashCache {}
// SAFETY: see above.
unsafe impl Sync for HashCache {}

impl HashCache {
    /// Creates an empty cache index whose lock is built from the given
    /// spec (a [`rwlocks::LockKind`] or a parsed [`LockSpec`] both work).
    pub fn new(spec: impl Into<LockSpec>) -> Result<Self, SpecError> {
        Ok(Self {
            lock: build_lock(&spec.into())?,
            map: UnsafeCell::new(HashMap::with_hasher(KeyHashBuilder)),
        })
    }

    /// Creates a cache pre-populated with `n` entries, as the benchmark does
    /// before its measurement interval.
    pub fn prepopulated(spec: impl Into<LockSpec>, n: u64) -> Result<Self, SpecError> {
        let cache = Self::new(spec)?;
        for key in 0..n {
            cache.insert(
                key,
                CacheEntry {
                    offset: key * 4096,
                    size: 4096,
                },
            );
        }
        Ok(cache)
    }

    /// The lock handle guarding this cache.
    pub fn lock(&self) -> &LockHandle {
        &self.lock
    }

    /// Display label of the lock guarding this cache.
    pub fn lock_label(&self) -> &str {
        self.lock.label()
    }

    /// The lock's statistics snapshot.
    pub fn lock_stats(&self) -> Snapshot {
        self.lock.snapshot()
    }

    /// Looks up `key` under shared permission.
    pub fn lookup(&self, key: u64) -> Option<CacheEntry> {
        self.lock.lock_shared();
        // SAFETY: shared permission held.
        let entry = unsafe { (*self.map.get()).get(&key).copied() };
        self.lock.unlock_shared();
        entry
    }

    /// Inserts `key` under exclusive permission, returning the previous
    /// entry if any.
    pub fn insert(&self, key: u64, entry: CacheEntry) -> Option<CacheEntry> {
        self.lock.lock_exclusive();
        // SAFETY: exclusive permission held.
        let prev = unsafe { (*self.map.get()).insert(key, entry) };
        self.lock.unlock_exclusive();
        prev
    }

    /// Erases `key` under exclusive permission, returning the removed entry
    /// if it existed.
    pub fn erase(&self, key: u64) -> Option<CacheEntry> {
        self.lock.lock_exclusive();
        // SAFETY: exclusive permission held.
        let prev = unsafe { (*self.map.get()).remove(&key) };
        self.lock.unlock_exclusive();
        prev
    }

    /// Number of entries currently cached.
    pub fn len(&self) -> usize {
        self.lock.lock_shared();
        // SAFETY: shared permission held.
        let n = unsafe { (*self.map.get()).len() };
        self.lock.unlock_shared();
        n
    }

    /// Whether the cache index is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for HashCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HashCache")
            .field("lock", &self.lock.label())
            .field("len", &self.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rwlocks::LockKind;
    use std::sync::Arc;

    #[test]
    fn insert_lookup_erase_round_trip() {
        let c = HashCache::new(LockKind::BravoBa).unwrap();
        assert!(c.is_empty());
        assert_eq!(
            c.insert(
                1,
                CacheEntry {
                    offset: 0,
                    size: 10
                }
            ),
            None
        );
        assert_eq!(
            c.lookup(1),
            Some(CacheEntry {
                offset: 0,
                size: 10
            })
        );
        assert_eq!(
            c.insert(
                1,
                CacheEntry {
                    offset: 4096,
                    size: 20
                }
            ),
            Some(CacheEntry {
                offset: 0,
                size: 10
            })
        );
        assert_eq!(c.erase(1).unwrap().offset, 4096);
        assert_eq!(c.lookup(1), None);
    }

    #[test]
    fn key_hasher_agrees_with_the_shard_router_hash() {
        use std::hash::{BuildHasher, Hasher};
        // One u64 write must land on exactly bravo::hash::key_hash — the
        // same function Db's shard router reduces — so the two can never
        // disagree about a key's dispersion.
        for key in [0u64, 1, 42, 0xdead_beef, u64::MAX] {
            let mut hasher = KeyHashBuilder.build_hasher();
            hasher.write_u64(key);
            assert_eq!(hasher.finish(), bravo::hash::key_hash(key));
        }
        // The byte path folds through the same mix and stays deterministic.
        let mut a = KeyHashBuilder.build_hasher();
        let mut b = KeyHashBuilder.build_hasher();
        a.write(&7u64.to_le_bytes());
        b.write_u64(7);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn prepopulation_sizes_correctly() {
        let c = HashCache::prepopulated(LockKind::PerCpu, 256).unwrap();
        assert_eq!(c.len(), 256);
        assert_eq!(c.lookup(255).unwrap().offset, 255 * 4096);
    }

    #[test]
    fn concurrent_insert_erase_lookup_is_consistent() {
        let c = Arc::new(HashCache::prepopulated(LockKind::BravoBa, 128).unwrap());
        std::thread::scope(|s| {
            let inserter = Arc::clone(&c);
            s.spawn(move || {
                for i in 128..1_128 {
                    inserter.insert(
                        i,
                        CacheEntry {
                            offset: i * 4096,
                            size: 4096,
                        },
                    );
                }
            });
            let eraser = Arc::clone(&c);
            s.spawn(move || {
                for i in 0..128 {
                    eraser.erase(i);
                }
            });
            for _ in 0..2 {
                let reader = Arc::clone(&c);
                s.spawn(move || {
                    for i in 0..1_128u64 {
                        if let Some(e) = reader.lookup(i) {
                            assert_eq!(e.offset, i * 4096, "entry for {i} is corrupted");
                        }
                    }
                });
            }
        });
        // 128 initial − 128 erased + 1000 inserted.
        assert_eq!(c.len(), 1_000);
    }
}
