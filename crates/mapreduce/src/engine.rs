//! The MapReduce engine and its mm-backed scratch allocator.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

use kernelsim::mm::{MmStruct, PAGE_SIZE};
use rwsem::KernelVariant;

/// Configuration of a MapReduce job.
#[derive(Debug, Clone, Copy)]
pub struct MapReduceConfig {
    /// Number of worker threads for the map phase.
    pub workers: usize,
    /// Which simulated kernel the job's address space uses.
    pub variant: KernelVariant,
    /// Size of each worker's scratch chunk, in pages. Smaller chunks mean
    /// more frequent `mmap`/`munmap` (write) traffic relative to page-fault
    /// (read) traffic.
    pub chunk_pages: u64,
    /// Simulated bytes of intermediate data accounted per emitted key/value
    /// pair.
    pub bytes_per_record: u64,
}

impl Default for MapReduceConfig {
    fn default() -> Self {
        Self {
            workers: 1,
            variant: KernelVariant::Stock,
            chunk_pages: 64,
            bytes_per_record: 64,
        }
    }
}

/// A per-worker scratch allocator backed by the simulated address space.
///
/// Metis allocates its intermediate tables with `mmap` and touches them as
/// it fills them; every first touch of a page is a fault taking `mmap_sem`
/// for read. This allocator mirrors that traffic: `account(bytes)` advances
/// a bump pointer through the current chunk, faulting each newly reached
/// page, and maps a fresh chunk (a write acquisition) when the current one
/// is exhausted. All chunks are unmapped when the allocator is dropped.
pub struct ScratchAllocator {
    mm: Arc<MmStruct>,
    chunk_pages: u64,
    current: Option<u64>,
    offset: u64,
    chunks: Vec<u64>,
}

impl ScratchAllocator {
    /// Creates an allocator drawing chunks of `chunk_pages` pages from `mm`.
    pub fn new(mm: Arc<MmStruct>, chunk_pages: u64) -> Self {
        Self {
            mm,
            chunk_pages: chunk_pages.max(1),
            current: None,
            offset: 0,
            chunks: Vec::new(),
        }
    }

    /// Accounts `bytes` of intermediate data, generating the corresponding
    /// page-fault and mmap traffic.
    pub fn account(&mut self, bytes: u64) {
        let chunk_len = self.chunk_pages * PAGE_SIZE;
        let mut remaining = bytes.max(1);
        while remaining > 0 {
            let base = match self.current {
                Some(base) if self.offset < chunk_len => base,
                _ => {
                    let base = self
                        .mm
                        .mmap(chunk_len, true)
                        .expect("simulated address space exhausted");
                    self.chunks.push(base);
                    self.current = Some(base);
                    self.offset = 0;
                    base
                }
            };
            let available = chunk_len - self.offset;
            let take = remaining.min(available);
            let first_page = self.offset / PAGE_SIZE;
            let last_page = (self.offset + take - 1) / PAGE_SIZE;
            for page in first_page..=last_page {
                self.mm
                    .page_fault(base + page * PAGE_SIZE)
                    .expect("fault on scratch chunk failed");
            }
            self.offset += take;
            remaining -= take;
        }
    }

    /// Number of chunks mapped so far.
    pub fn chunks_mapped(&self) -> usize {
        self.chunks.len()
    }
}

impl Drop for ScratchAllocator {
    fn drop(&mut self) {
        for &chunk in &self.chunks {
            // Ignore errors: the address space outlives the job, and a
            // missing mapping here only means a test tore it down early.
            let _ = self.mm.munmap(chunk);
        }
    }
}

/// A small multi-threaded MapReduce engine.
///
/// `map` is applied to each input item, emitting `(key, value)` pairs;
/// `reduce` folds all values of a key into a single value. The input is
/// split into one contiguous chunk per worker.
pub struct MapReduce {
    config: MapReduceConfig,
    mm: Arc<MmStruct>,
}

impl MapReduce {
    /// Creates an engine with the given configuration (one fresh simulated
    /// address space per engine, like one Metis process).
    pub fn new(config: MapReduceConfig) -> Self {
        Self {
            mm: Arc::new(MmStruct::new(config.variant)),
            config,
        }
    }

    /// The engine's simulated address space (for instrumentation).
    pub fn mm(&self) -> &MmStruct {
        &self.mm
    }

    /// Runs a job over `input`, returning the reduced key/value map.
    ///
    /// Type parameters: `I` input item, `K` intermediate key, `V`
    /// intermediate value.
    pub fn run<I, K, V>(
        &self,
        input: &[I],
        map: impl Fn(&I, &mut dyn FnMut(K, V)) + Sync,
        reduce: impl Fn(V, V) -> V + Sync,
    ) -> HashMap<K, V>
    where
        I: Sync,
        K: Eq + Hash + Send + Clone,
        V: Send + Clone,
    {
        let workers = self.config.workers.max(1);
        let chunk_size = input.len().div_ceil(workers).max(1);
        let map = &map;
        let reduce = &reduce;

        let partials: Vec<HashMap<K, V>> = std::thread::scope(|s| {
            let mut handles = Vec::new();
            for chunk in input.chunks(chunk_size) {
                let mm = Arc::clone(&self.mm);
                let config = self.config;
                handles.push(s.spawn(move || {
                    let mut scratch = ScratchAllocator::new(mm, config.chunk_pages);
                    let mut local: HashMap<K, V> = HashMap::new();
                    for item in chunk {
                        map(item, &mut |key, value| {
                            scratch.account(config.bytes_per_record);
                            match local.remove(&key) {
                                Some(existing) => {
                                    local.insert(key, reduce(existing, value));
                                }
                                None => {
                                    local.insert(key, value);
                                }
                            }
                        });
                    }
                    local
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("map worker panicked"))
                .collect()
        });

        // Reduce phase: merge the per-worker tables.
        let mut result: HashMap<K, V> = HashMap::new();
        for partial in partials {
            for (key, value) in partial {
                match result.remove(&key) {
                    Some(existing) => {
                        result.insert(key, reduce(existing, value));
                    }
                    None => {
                        result.insert(key, value);
                    }
                }
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_allocator_generates_fault_and_map_traffic() {
        let mm = Arc::new(MmStruct::new(KernelVariant::Stock));
        {
            let mut scratch = ScratchAllocator::new(Arc::clone(&mm), 4);
            // 5 pages of data across 4-page chunks → 2 chunks, ≥5 faults.
            scratch.account(5 * PAGE_SIZE);
            assert_eq!(scratch.chunks_mapped(), 2);
        }
        use std::sync::atomic::Ordering;
        assert!(mm.stats.page_faults.load(Ordering::Relaxed) >= 5);
        assert_eq!(mm.stats.mmaps.load(Ordering::Relaxed), 2);
        assert_eq!(mm.stats.munmaps.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn word_count_style_job_produces_correct_totals() {
        let engine = MapReduce::new(MapReduceConfig {
            workers: 3,
            ..MapReduceConfig::default()
        });
        let input: Vec<String> = vec![
            "a b a".to_string(),
            "b c".to_string(),
            "a".to_string(),
            "c c c".to_string(),
        ];
        let counts = engine.run(
            &input,
            |line, emit| {
                for word in line.split_whitespace() {
                    emit(word.to_string(), 1u64);
                }
            },
            |a, b| a + b,
        );
        assert_eq!(counts.get("a"), Some(&3));
        assert_eq!(counts.get("b"), Some(&2));
        assert_eq!(counts.get("c"), Some(&4));
        assert_eq!(counts.len(), 3);
    }

    #[test]
    fn results_are_identical_across_kernel_variants_and_worker_counts() {
        let input: Vec<u64> = (0..500).collect();
        let mut reference: Option<HashMap<u64, u64>> = None;
        for &variant in KernelVariant::all() {
            for workers in [1, 2, 4] {
                let engine = MapReduce::new(MapReduceConfig {
                    workers,
                    variant,
                    ..MapReduceConfig::default()
                });
                let out = engine.run(&input, |n, emit| emit(n % 7, *n), |a, b| a.wrapping_add(b));
                match &reference {
                    None => reference = Some(out),
                    Some(r) => assert_eq!(r, &out, "divergence with {variant}/{workers} workers"),
                }
            }
        }
    }
}
