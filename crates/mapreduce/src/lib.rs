//! A Metis-like MapReduce library running over the simulated mm subsystem.
//!
//! The paper's Tables 1 and 2 run two applications from the Metis MapReduce
//! suite — `wc` (word count) and `wrmem` (inverted index over random words
//! generated in memory) — because they are known to produce "relatively
//! intense access to VMA through the mix of page-fault and mmap operations",
//! i.e. heavy mixed read/write traffic on `mmap_sem`.
//!
//! This crate rebuilds that stack:
//!
//! * [`engine`] — a small multi-threaded MapReduce engine whose workers
//!   allocate their intermediate buffers through the simulated address space
//!   ([`kernelsim::MmStruct`]), faulting pages in as they fill them and
//!   unmapping them when done. The map phase therefore generates streams of
//!   `mmap_sem` read acquisitions (page faults) interleaved with write
//!   acquisitions (mmap/munmap), just like Metis on a real kernel.
//! * [`apps`] — the two applications, `wc` and `wrmem`, plus the corpus
//!   generators that feed them.
//!
//! Both applications are parameterized by [`rwsem::KernelVariant`], so the
//! harness can report stock-vs-BRAVO runtimes exactly as the paper's tables
//! do.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod apps;
pub mod engine;

pub use apps::{generate_random_words, generate_text, wc, wrmem, AppResult};
pub use engine::{MapReduce, MapReduceConfig};
