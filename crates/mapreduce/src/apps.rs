//! The two Metis applications the paper benchmarks: `wc` and `wrmem`.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rwsem::KernelVariant;

use crate::engine::{MapReduce, MapReduceConfig};

/// Result of one application run.
#[derive(Debug, Clone)]
pub struct AppResult {
    /// Wall-clock runtime of the job (what Tables 1 and 2 report).
    pub runtime: Duration,
    /// Number of distinct keys produced by the reduce phase.
    pub distinct_keys: usize,
    /// Page faults (read acquisitions of `mmap_sem`) the job generated.
    pub page_faults: u64,
    /// mmap + munmap calls (write acquisitions) the job generated.
    pub map_operations: u64,
}

/// Generates a deterministic pseudo-text corpus of `words` words drawn from
/// a small vocabulary, used as the `wc` input.
pub fn generate_text(words: usize, seed: u64) -> Vec<String> {
    const VOCAB: &[&str] = &[
        "lock",
        "reader",
        "writer",
        "bias",
        "table",
        "slot",
        "cache",
        "numa",
        "kernel",
        "scan",
        "phase",
        "fair",
        "cohort",
        "semaphore",
        "fault",
        "page",
        "map",
        "reduce",
        "word",
        "count",
    ];
    let mut rng = SmallRng::seed_from_u64(seed);
    let words_per_line = 16;
    let mut lines = Vec::with_capacity(words / words_per_line + 1);
    let mut line = String::new();
    for i in 0..words {
        if !line.is_empty() {
            line.push(' ');
        }
        line.push_str(VOCAB[rng.gen_range(0..VOCAB.len())]);
        if (i + 1) % words_per_line == 0 {
            lines.push(std::mem::take(&mut line));
        }
    }
    if !line.is_empty() {
        lines.push(line);
    }
    lines
}

/// Generates `words` random fixed-length "words" (as `wrmem` does in
/// memory before indexing them), grouped into records of `words_per_record`.
pub fn generate_random_words(words: usize, words_per_record: usize, seed: u64) -> Vec<Vec<u32>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let words_per_record = words_per_record.max(1);
    let mut records = Vec::with_capacity(words / words_per_record + 1);
    let mut record = Vec::with_capacity(words_per_record);
    for _ in 0..words {
        // A 3-letter lowercase word encoded as an integer keeps the key
        // space comparable to wrmem's random words.
        record.push(rng.gen_range(0..26u32 * 26 * 26));
        if record.len() == words_per_record {
            records.push(std::mem::take(&mut record));
        }
    }
    if !record.is_empty() {
        records.push(record);
    }
    records
}

/// Runs the `wc` (word count) application over `lines` with `workers`
/// threads on the given simulated kernel.
pub fn wc(lines: &[String], workers: usize, variant: KernelVariant) -> AppResult {
    let engine = MapReduce::new(MapReduceConfig {
        workers,
        variant,
        ..MapReduceConfig::default()
    });
    let start = Instant::now();
    let counts: HashMap<String, u64> = engine.run(
        lines,
        |line, emit| {
            for word in line.split_whitespace() {
                emit(word.to_string(), 1u64);
            }
        },
        |a, b| a + b,
    );
    let runtime = start.elapsed();
    finish(&engine, runtime, counts.len())
}

/// Runs the `wrmem` (in-memory inverted index) application: each record of
/// random words is indexed, producing `word → positions` lists, with
/// `workers` threads on the given simulated kernel.
pub fn wrmem(records: &[Vec<u32>], workers: usize, variant: KernelVariant) -> AppResult {
    let engine = MapReduce::new(MapReduceConfig {
        workers,
        variant,
        // wrmem allocates its input and intermediate buffers aggressively;
        // a smaller chunk size raises the mmap:fault ratio the way Metis'
        // allocation pattern does.
        chunk_pages: 32,
        bytes_per_record: 96,
    });
    let start = Instant::now();
    let index: HashMap<u32, Vec<u64>> = engine.run(
        records,
        |record, emit| {
            for (pos, &word) in record.iter().enumerate() {
                emit(word, vec![pos as u64]);
            }
        },
        |mut a, mut b| {
            a.append(&mut b);
            a
        },
    );
    let runtime = start.elapsed();
    finish(&engine, runtime, index.len())
}

fn finish(engine: &MapReduce, runtime: Duration, distinct_keys: usize) -> AppResult {
    use std::sync::atomic::Ordering;
    let stats = &engine.mm().stats;
    AppResult {
        runtime,
        distinct_keys,
        page_faults: stats.page_faults.load(Ordering::Relaxed),
        map_operations: stats.mmaps.load(Ordering::Relaxed) + stats.munmaps.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_generator_is_deterministic_and_sized() {
        let a = generate_text(1_000, 42);
        let b = generate_text(1_000, 42);
        assert_eq!(a, b);
        let words: usize = a.iter().map(|l| l.split_whitespace().count()).sum();
        assert_eq!(words, 1_000);
        assert_ne!(a, generate_text(1_000, 43));
    }

    #[test]
    fn random_words_generator_is_deterministic_and_sized() {
        let a = generate_random_words(500, 64, 7);
        let b = generate_random_words(500, 64, 7);
        assert_eq!(a, b);
        let words: usize = a.iter().map(Vec::len).sum();
        assert_eq!(words, 500);
    }

    #[test]
    fn wc_counts_are_kernel_variant_independent() {
        let lines = generate_text(4_000, 1);
        let stock = wc(&lines, 2, KernelVariant::Stock);
        let bravo = wc(&lines, 2, KernelVariant::Bravo);
        assert_eq!(stock.distinct_keys, bravo.distinct_keys);
        assert!(stock.page_faults > 0);
        assert!(bravo.page_faults > 0);
        assert!(stock.map_operations > 0);
    }

    #[test]
    fn wrmem_builds_an_index_on_both_kernels() {
        let records = generate_random_words(2_000, 128, 3);
        let stock = wrmem(&records, 2, KernelVariant::Stock);
        let bravo = wrmem(&records, 2, KernelVariant::Bravo);
        assert_eq!(stock.distinct_keys, bravo.distinct_keys);
        assert!(stock.distinct_keys > 0);
        assert!(bravo.page_faults > 0);
    }

    #[test]
    fn runtime_is_measured() {
        let lines = generate_text(500, 9);
        let r = wc(&lines, 1, KernelVariant::Stock);
        assert!(r.runtime > Duration::ZERO);
    }
}
