//! Simulated machine topology.
//!
//! Several of the locks evaluated in the BRAVO paper (Cohort-RW, the Per-CPU
//! "brlock"-style lock, BRAVO-2D) need to know *where* the calling thread is
//! running: its logical CPU and its NUMA node. The paper's artifacts query
//! the operating system (`sched_getcpu`, libnuma). A reproduction cannot
//! depend on a particular host layout — the original experiments ran on
//! 72-way and 144-way Xeon boxes — so this crate provides a *simulated*
//! topology instead:
//!
//! * A process-global [`Machine`] describes `nodes × cpus_per_node` logical
//!   CPUs. It defaults to the paper's user-space testbed (2 sockets × 36
//!   logical CPUs) and can be overridden once at startup, or via the
//!   `BRAVO_TOPOLOGY` environment variable (`"<nodes>x<cpus_per_node>"`).
//! * Every thread that calls into the registry is assigned a stable small
//!   integer [`ThreadId`] and pinned (logically) to a CPU round-robin, which
//!   is exactly what an unbound benchmark thread converges to on a real box.
//!
//! The crate also hosts the cache-geometry constants used throughout the
//! workspace ([`CACHE_LINE`], [`SECTOR`]) and the [`CachePadded`] helper that
//! gives every distributed reader indicator its own 128-byte sector, matching
//! the paper's layout discussion in §5.

mod machine;
mod padded;
mod registry;

pub use machine::{Machine, MachineBuilder};
pub use padded::CachePadded;
pub use registry::{
    current_cpu, current_node, current_shard, current_thread_id, registered_threads, ThreadId,
};

/// Unit of coherence on the simulated machine, in bytes.
pub const CACHE_LINE: usize = 64;

/// Alignment sector used to avoid false sharing (two cache lines, matching
/// the adjacent-line prefetcher discussion in §5 of the paper).
pub const SECTOR: usize = 128;

/// Returns the process-global machine description.
///
/// The first call freezes the configuration: either the value installed with
/// [`Machine::install`], the `BRAVO_TOPOLOGY` environment variable, or the
/// default 2-node × 36-CPU machine.
pub fn machine() -> &'static Machine {
    machine::global()
}

/// Total number of logical CPUs on the simulated machine.
pub fn logical_cpus() -> usize {
    machine().logical_cpus()
}

/// Number of NUMA nodes on the simulated machine.
pub fn numa_nodes() -> usize {
    machine().nodes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_powers_of_two() {
        assert!(CACHE_LINE.is_power_of_two());
        assert!(SECTOR.is_power_of_two());
        assert_eq!(SECTOR % CACHE_LINE, 0);
    }

    #[test]
    fn machine_is_consistent() {
        let m = machine();
        assert_eq!(m.logical_cpus(), m.nodes() * m.cpus_per_node());
        assert!(m.nodes() >= 1);
        assert!(m.logical_cpus() >= 1);
    }

    #[test]
    fn cpu_to_node_mapping_is_total() {
        let m = machine();
        for cpu in 0..m.logical_cpus() {
            assert!(m.node_of_cpu(cpu) < m.nodes());
        }
    }
}
