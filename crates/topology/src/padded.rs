//! Cache-sector padding helper.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Wraps a value so that it occupies (at least) its own 128-byte cache
/// sector.
///
/// Distributed reader-writer locks (Cohort-RW, Per-CPU) give every reader
/// indicator its own sector so that readers on different nodes or CPUs do not
/// false-share; the paper accounts 128 bytes per indicator on the Intel
/// testbed because the adjacent-line prefetcher pairs 64-byte lines. This
/// type reproduces that layout portably.
#[derive(Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in its own cache sector.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Consumes the wrapper, returning the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("CachePadded").field(&self.value).finish()
    }
}

impl<T: Clone> Clone for CachePadded<T> {
    fn clone(&self) -> Self {
        Self::new(self.value.clone())
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SECTOR;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn padded_values_occupy_whole_sectors() {
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), SECTOR);
        assert_eq!(std::mem::size_of::<CachePadded<u8>>(), SECTOR);
        assert_eq!(std::mem::size_of::<CachePadded<AtomicUsize>>(), SECTOR);
        assert_eq!(std::mem::size_of::<CachePadded<[u8; 200]>>(), 2 * SECTOR);
    }

    #[test]
    fn array_elements_do_not_share_sectors() {
        let arr = [CachePadded::new(0u64), CachePadded::new(1u64)];
        let a = &arr[0] as *const _ as usize;
        let b = &arr[1] as *const _ as usize;
        assert!(b - a >= SECTOR);
    }

    #[test]
    fn deref_and_into_inner_round_trip() {
        let mut p = CachePadded::new(41u32);
        *p += 1;
        assert_eq!(*p, 42);
        assert_eq!(p.into_inner(), 42);
    }
}
