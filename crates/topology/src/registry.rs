//! Thread registry: stable small thread ids and logical CPU assignment.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::machine;

/// Small, dense identifier for a registered thread.
///
/// Ids are handed out in arrival order starting from zero and are never
/// reused within a process, which makes them suitable as hash inputs
/// (BRAVO's `(thread, lock)` hash) and as direct indices into per-thread
/// arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ThreadId(pub usize);

impl ThreadId {
    /// The raw integer value of the id.
    pub fn as_usize(self) -> usize {
        self.0
    }
}

static NEXT_ID: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static TID: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Returns the calling thread's [`ThreadId`], assigning one on first use.
pub fn current_thread_id() -> ThreadId {
    TID.with(|slot| {
        if let Some(id) = slot.get() {
            ThreadId(id)
        } else {
            let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
            slot.set(Some(id));
            ThreadId(id)
        }
    })
}

/// Number of threads that have registered so far (i.e. called any of the
/// `current_*` functions).
pub fn registered_threads() -> usize {
    NEXT_ID.load(Ordering::Relaxed)
}

/// Logical CPU the calling thread is (logically) pinned to.
///
/// Threads are assigned to CPUs round-robin in registration order, which is
/// the steady-state placement an unbound benchmark thread pool converges to.
pub fn current_cpu() -> usize {
    current_thread_id().as_usize() % machine().logical_cpus()
}

/// NUMA node of the calling thread's logical CPU.
pub fn current_node() -> usize {
    machine().node_of_cpu(current_cpu())
}

/// Home shard of the calling thread in a table sharded `shards` ways.
///
/// Shards are assigned per NUMA node: a reader always publishes into the
/// shard of its home node, so tables sharded one-per-node keep every
/// publication node-local. When a table has fewer shards than the machine
/// has nodes, nodes wrap around the shards round-robin.
pub fn current_shard(shards: usize) -> usize {
    current_node() % shards.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn thread_id_is_stable_within_a_thread() {
        let a = current_thread_id();
        let b = current_thread_id();
        assert_eq!(a, b);
    }

    #[test]
    fn thread_ids_are_unique_across_threads() {
        let ids = Mutex::new(HashSet::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let id = current_thread_id();
                    assert!(ids.lock().unwrap().insert(id));
                });
            }
        });
        assert_eq!(ids.into_inner().unwrap().len(), 8);
    }

    #[test]
    fn cpu_and_node_are_in_range() {
        std::thread::scope(|s| {
            for _ in 0..16 {
                s.spawn(|| {
                    assert!(current_cpu() < machine().logical_cpus());
                    assert!(current_node() < machine().nodes());
                });
            }
        });
    }

    #[test]
    fn current_shard_wraps_and_handles_degenerate_counts() {
        assert!(current_shard(4) < 4);
        assert_eq!(current_shard(1), 0);
        // A zero shard count is clamped rather than dividing by zero.
        assert_eq!(current_shard(0), 0);
        assert_eq!(current_shard(usize::MAX), current_node());
    }

    #[test]
    fn registered_threads_is_monotone() {
        let before = registered_threads();
        std::thread::scope(|s| {
            s.spawn(|| {
                current_thread_id();
            });
        });
        assert!(registered_threads() > before);
    }
}
