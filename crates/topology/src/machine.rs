//! Process-global description of the simulated machine.

use std::sync::OnceLock;

/// Description of the simulated machine: a flat array of logical CPUs grouped
/// into NUMA nodes.
///
/// The default machine mirrors the paper's user-space testbed (Oracle X5-2):
/// 2 sockets, 18 cores per socket, 2-way hyperthreading — 72 logical CPUs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Machine {
    nodes: usize,
    cpus_per_node: usize,
}

/// Builder for a [`Machine`], used by tests and the benchmark harness to
/// model different boxes (e.g. the 4-socket X5-4 used for the kernel
/// experiments).
#[derive(Debug, Clone)]
pub struct MachineBuilder {
    nodes: usize,
    cpus_per_node: usize,
}

impl Default for MachineBuilder {
    fn default() -> Self {
        Self {
            nodes: 2,
            cpus_per_node: 36,
        }
    }
}

impl MachineBuilder {
    /// Creates a builder with the default (X5-2-like) geometry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of NUMA nodes (sockets). Must be at least 1.
    pub fn nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes.max(1);
        self
    }

    /// Sets the number of logical CPUs per node. Must be at least 1.
    pub fn cpus_per_node(mut self, cpus: usize) -> Self {
        self.cpus_per_node = cpus.max(1);
        self
    }

    /// Finalizes the description.
    pub fn build(self) -> Machine {
        Machine {
            nodes: self.nodes,
            cpus_per_node: self.cpus_per_node,
        }
    }
}

impl Default for Machine {
    fn default() -> Self {
        MachineBuilder::default().build()
    }
}

impl Machine {
    /// Creates a machine with the given geometry.
    pub fn new(nodes: usize, cpus_per_node: usize) -> Self {
        MachineBuilder::new()
            .nodes(nodes)
            .cpus_per_node(cpus_per_node)
            .build()
    }

    /// Parses a `"<nodes>x<cpus_per_node>"` description, e.g. `"4x36"`.
    pub fn parse(spec: &str) -> Option<Self> {
        let (nodes, cpus) = spec.split_once(['x', 'X'])?;
        let nodes: usize = nodes.trim().parse().ok()?;
        let cpus: usize = cpus.trim().parse().ok()?;
        if nodes == 0 || cpus == 0 {
            return None;
        }
        Some(Self::new(nodes, cpus))
    }

    /// Number of NUMA nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Logical CPUs per NUMA node.
    pub fn cpus_per_node(&self) -> usize {
        self.cpus_per_node
    }

    /// Total number of logical CPUs.
    pub fn logical_cpus(&self) -> usize {
        self.nodes * self.cpus_per_node
    }

    /// NUMA node hosting a given logical CPU.
    ///
    /// CPUs are numbered node-major: CPUs `[0, cpus_per_node)` live on node 0,
    /// the next `cpus_per_node` on node 1, and so on.
    ///
    /// # Panics
    ///
    /// Panics if `cpu >= self.logical_cpus()`.
    pub fn node_of_cpu(&self, cpu: usize) -> usize {
        assert!(
            cpu < self.logical_cpus(),
            "cpu {cpu} out of range for machine with {} CPUs",
            self.logical_cpus()
        );
        cpu / self.cpus_per_node
    }

    /// Installs `self` as the process-global machine.
    ///
    /// Returns `true` if this call won the race and the global now reflects
    /// `self`; `false` if a global machine had already been frozen (by an
    /// earlier install or by any topology query).
    pub fn install(self) -> bool {
        let mut installed = false;
        GLOBAL.get_or_init(|| {
            installed = true;
            self
        });
        installed
    }
}

static GLOBAL: OnceLock<Machine> = OnceLock::new();

/// Returns the process-global machine, freezing it on first use.
pub(crate) fn global() -> &'static Machine {
    GLOBAL.get_or_init(|| {
        if let Ok(spec) = std::env::var("BRAVO_TOPOLOGY") {
            if let Some(m) = Machine::parse(&spec) {
                return m;
            }
        }
        Machine::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_machine_matches_paper_testbed() {
        let m = Machine::default();
        assert_eq!(m.nodes(), 2);
        assert_eq!(m.logical_cpus(), 72);
    }

    #[test]
    fn parse_accepts_well_formed_specs() {
        assert_eq!(Machine::parse("4x36"), Some(Machine::new(4, 36)));
        assert_eq!(Machine::parse("1X8"), Some(Machine::new(1, 8)));
        assert_eq!(Machine::parse(" 2 x 4 "), Some(Machine::new(2, 4)));
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert_eq!(Machine::parse(""), None);
        assert_eq!(Machine::parse("4"), None);
        assert_eq!(Machine::parse("0x8"), None);
        assert_eq!(Machine::parse("4x0"), None);
        assert_eq!(Machine::parse("axb"), None);
    }

    #[test]
    fn node_major_cpu_numbering() {
        let m = Machine::new(4, 8);
        assert_eq!(m.node_of_cpu(0), 0);
        assert_eq!(m.node_of_cpu(7), 0);
        assert_eq!(m.node_of_cpu(8), 1);
        assert_eq!(m.node_of_cpu(31), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn node_of_cpu_rejects_out_of_range() {
        Machine::new(2, 2).node_of_cpu(4);
    }
}
