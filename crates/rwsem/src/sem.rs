//! The stock rwsem state machine.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

use bravo::clock::cpu_relax;

/// Writer-locked flag in the count word.
const WRITER_LOCKED: u64 = 1 << 63;
/// Waiters-present hint in the count word.
const WAITERS: u64 = 1 << 62;
/// Mask of the active-reader count.
const READER_MASK: u64 = WAITERS - 1;

/// Owner-field flag: the semaphore is currently owned by readers.
const OWNER_READER: usize = 0x1;
/// Owner-field flag: owner value is untrustworthy (set by readers alongside
/// [`OWNER_READER`], as the kernel does).
const OWNER_NONSPINNABLE: usize = 0x2;
const OWNER_FLAG_MASK: usize = OWNER_READER | OWNER_NONSPINNABLE;

/// Tuning knobs for the semaphore, mirroring the kernel options the paper
/// discusses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RwsemConfig {
    /// Enable optimistic spinning on the owner field before blocking
    /// (`CONFIG_RWSEM_SPIN_ON_OWNER`).
    pub spin_on_owner: bool,
    /// Maximum optimistic-spin iterations before giving up and queueing.
    /// Stands in for "while the owner is running on a CPU"; the simulated
    /// kernel has no run-queue, so the bound plays that role.
    pub spin_limit: u32,
    /// When `true`, apply the paper's owner-field fix: readers only set the
    /// reader-owned bits if they are not already set, instead of every reader
    /// storing to the owner word.
    pub minimize_reader_owner_writes: bool,
}

impl Default for RwsemConfig {
    fn default() -> Self {
        Self {
            spin_on_owner: true,
            spin_limit: 256,
            minimize_reader_owner_writes: false,
        }
    }
}

impl RwsemConfig {
    /// The stock kernel configuration.
    pub fn stock() -> Self {
        Self::default()
    }

    /// The configuration the BRAVO patch uses (owner-field writes minimized).
    pub fn bravo_patched() -> Self {
        Self {
            minimize_reader_owner_writes: true,
            ..Self::default()
        }
    }
}

/// Whether a queued waiter wants read or write permission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WaitKind {
    Reader,
    Writer,
}

/// Queue bookkeeping protected by the wait-list lock (the kernel's
/// `wait_lock` spinlock; a `Mutex` here since waiters block anyway).
#[derive(Default)]
struct WaitQueue {
    /// Tickets of queued waiters in FIFO order.
    queue: VecDeque<(u64, WaitKind)>,
    /// Next ticket to hand out.
    next_ticket: u64,
    /// Tickets that have been granted and may proceed.
    granted_readers: u64,
    granted_writer: Option<u64>,
}

/// A user-space re-implementation of the Linux reader-writer semaphore.
///
/// The fast paths match the kernel's: an uncontended `down_read` is a single
/// atomic add on the shared count word (plus the owner-field store the paper
/// calls out), and an uncontended `down_write` is a single CAS. Contended
/// paths optimistically spin on the owner and then join a FIFO wait queue;
/// writers waking the queue wake either one writer or the whole leading run
/// of readers (reader grouping), as the kernel does.
pub struct RwSemaphore {
    count: AtomicU64,
    owner: AtomicUsize,
    config: RwsemConfig,
    waiters: Mutex<WaitQueue>,
    wake: Condvar,
    /// Number of stores performed to the owner field by readers; the paper's
    /// owner-field fix exists to shrink exactly this number, so we expose it
    /// to tests and experiments.
    reader_owner_stores: AtomicU64,
}

impl Default for RwSemaphore {
    fn default() -> Self {
        Self::new()
    }
}

impl RwSemaphore {
    /// Creates a semaphore with the stock kernel configuration.
    pub fn new() -> Self {
        Self::with_config(RwsemConfig::stock())
    }

    /// Creates a semaphore with an explicit configuration.
    pub fn with_config(config: RwsemConfig) -> Self {
        Self {
            count: AtomicU64::new(0),
            owner: AtomicUsize::new(0),
            config,
            waiters: Mutex::new(WaitQueue::default()),
            wake: Condvar::new(),
            reader_owner_stores: AtomicU64::new(0),
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> RwsemConfig {
        self.config
    }

    /// Number of stores readers have made to the owner field so far.
    pub fn reader_owner_stores(&self) -> u64 {
        self.reader_owner_stores.load(Ordering::Relaxed)
    }

    /// Number of currently active readers (racy snapshot, for tests).
    pub fn active_readers(&self) -> u64 {
        self.count.load(Ordering::Relaxed) & READER_MASK
    }

    /// Whether a writer currently holds the semaphore (racy snapshot).
    pub fn writer_locked(&self) -> bool {
        self.count.load(Ordering::Relaxed) & WRITER_LOCKED != 0
    }

    fn task_id() -> usize {
        // Stand-in for the kernel's `current` task_struct pointer.
        topology::current_thread_id().as_usize() + 1
    }

    fn set_owner_reader(&self) {
        let desired_flags = OWNER_READER | OWNER_NONSPINNABLE;
        if self.config.minimize_reader_owner_writes {
            // Patched behaviour: only the first reader after a writer stores.
            if self.owner.load(Ordering::Relaxed) & OWNER_FLAG_MASK == desired_flags {
                return;
            }
            self.owner.store(desired_flags, Ordering::Relaxed);
        } else {
            // Stock behaviour: every reader stores its task pointer plus the
            // reader bits "for debugging purposes only".
            self.owner
                .store((Self::task_id() << 2) | desired_flags, Ordering::Relaxed);
        }
        self.reader_owner_stores.fetch_add(1, Ordering::Relaxed);
    }

    fn set_owner_writer(&self) {
        self.owner.store(Self::task_id() << 2, Ordering::Relaxed);
    }

    fn clear_owner(&self) {
        self.owner.store(0, Ordering::Relaxed);
    }

    /// Acquires the semaphore for reading.
    pub fn down_read(&self) {
        if self.try_read_fast() {
            return;
        }
        self.down_read_slow();
    }

    /// Non-blocking read acquisition.
    pub fn down_read_trylock(&self) -> bool {
        self.try_read_fast()
    }

    fn try_read_fast(&self) -> bool {
        let mut cur = self.count.load(Ordering::Relaxed);
        loop {
            if cur & (WRITER_LOCKED | WAITERS) != 0 {
                return false;
            }
            match self.count.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.set_owner_reader();
                    return true;
                }
                Err(actual) => cur = actual,
            }
        }
    }

    fn down_read_slow(&self) {
        // Optimistic spinning: if the writer that blocks us is "on CPU"
        // (simulated by a bounded spin), keep retrying the fast path.
        if self.config.spin_on_owner && self.owner_spinnable() {
            for _ in 0..self.config.spin_limit {
                if self.try_read_fast() {
                    return;
                }
                cpu_relax();
            }
        }
        // Join the wait queue.
        let ticket = {
            let mut q = self.waiters.lock().expect("rwsem wait queue poisoned");
            self.count.fetch_or(WAITERS, Ordering::Relaxed);
            let ticket = q.next_ticket;
            q.next_ticket += 1;
            q.queue.push_back((ticket, WaitKind::Reader));
            // If the semaphore became free while we queued, kick a wakeup so
            // the queue does not stall.
            self.maybe_grant(&mut q);
            ticket
        };
        let mut q = self.waiters.lock().expect("rwsem wait queue poisoned");
        loop {
            if q.granted_readers > 0 && !q.queue.iter().any(|(t, _)| *t == ticket) {
                q.granted_readers -= 1;
                break;
            }
            q = self.wake.wait(q).expect("rwsem wait queue poisoned");
        }
        drop(q);
        self.set_owner_reader();
    }

    /// Releases a read acquisition.
    pub fn up_read(&self) {
        let prev = self.count.fetch_sub(1, Ordering::Release);
        debug_assert_ne!(prev & READER_MASK, 0, "up_read with no active readers");
        if prev & READER_MASK == 1 && prev & WAITERS != 0 {
            // Last reader out with waiters queued: wake the queue head.
            let mut q = self.waiters.lock().expect("rwsem wait queue poisoned");
            self.maybe_grant(&mut q);
        }
    }

    /// Acquires the semaphore for writing.
    pub fn down_write(&self) {
        if self.try_write_fast() {
            return;
        }
        self.down_write_slow();
    }

    /// Non-blocking write acquisition.
    pub fn down_write_trylock(&self) -> bool {
        self.try_write_fast()
    }

    fn try_write_fast(&self) -> bool {
        // A writer can take the semaphore when there are no active readers
        // and no writer; the WAITERS bit may be set (it is only a hint).
        let mut cur = self.count.load(Ordering::Relaxed);
        loop {
            if cur & (WRITER_LOCKED | READER_MASK) != 0 {
                return false;
            }
            match self.count.compare_exchange_weak(
                cur,
                cur | WRITER_LOCKED,
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.set_owner_writer();
                    return true;
                }
                Err(actual) => cur = actual,
            }
        }
    }

    fn down_write_slow(&self) {
        if self.config.spin_on_owner && self.owner_spinnable() {
            for _ in 0..self.config.spin_limit {
                if self.try_write_fast() {
                    return;
                }
                cpu_relax();
            }
        }
        let ticket = {
            let mut q = self.waiters.lock().expect("rwsem wait queue poisoned");
            self.count.fetch_or(WAITERS, Ordering::Relaxed);
            let ticket = q.next_ticket;
            q.next_ticket += 1;
            q.queue.push_back((ticket, WaitKind::Writer));
            self.maybe_grant(&mut q);
            ticket
        };
        let mut q = self.waiters.lock().expect("rwsem wait queue poisoned");
        loop {
            if q.granted_writer == Some(ticket) {
                q.granted_writer = None;
                break;
            }
            q = self.wake.wait(q).expect("rwsem wait queue poisoned");
        }
        drop(q);
        self.set_owner_writer();
    }

    /// Releases a write acquisition.
    pub fn up_write(&self) {
        self.clear_owner();
        let prev = self.count.fetch_and(!WRITER_LOCKED, Ordering::Release);
        debug_assert_ne!(prev & WRITER_LOCKED, 0, "up_write with no writer");
        if prev & WAITERS != 0 {
            let mut q = self.waiters.lock().expect("rwsem wait queue poisoned");
            self.maybe_grant(&mut q);
        }
    }

    /// Whether optimistic spinning is currently worthwhile: the kernel spins
    /// while the owner is a writer running on a CPU and bails out for
    /// reader-owned or unknown owners.
    fn owner_spinnable(&self) -> bool {
        let owner = self.owner.load(Ordering::Relaxed);
        owner & OWNER_NONSPINNABLE == 0
    }

    /// With the wait-queue lock held: grant the queue head if the semaphore
    /// state allows, applying reader grouping (a leading run of readers is
    /// granted together).
    fn maybe_grant(&self, q: &mut WaitQueue) {
        loop {
            let Some(&(ticket, kind)) = q.queue.front() else {
                // Queue drained: clear the waiters hint if nothing is queued.
                self.count.fetch_and(!WAITERS, Ordering::Relaxed);
                return;
            };
            match kind {
                WaitKind::Writer => {
                    if q.granted_writer.is_some() {
                        return;
                    }
                    // Grant the writer when no readers are active and no
                    // writer holds the semaphore.
                    let mut cur = self.count.load(Ordering::Relaxed);
                    loop {
                        if cur & (WRITER_LOCKED | READER_MASK) != 0 {
                            return;
                        }
                        match self.count.compare_exchange_weak(
                            cur,
                            cur | WRITER_LOCKED,
                            Ordering::Acquire,
                            Ordering::Relaxed,
                        ) {
                            Ok(_) => break,
                            Err(actual) => cur = actual,
                        }
                    }
                    q.queue.pop_front();
                    q.granted_writer = Some(ticket);
                    self.wake.notify_all();
                    return;
                }
                WaitKind::Reader => {
                    // Grant the whole leading run of readers, provided no
                    // writer holds the semaphore.
                    if self.count.load(Ordering::Relaxed) & WRITER_LOCKED != 0 {
                        return;
                    }
                    let mut granted = 0;
                    while let Some(&(_, WaitKind::Reader)) = q.queue.front() {
                        q.queue.pop_front();
                        granted += 1;
                    }
                    self.count.fetch_add(granted, Ordering::Acquire);
                    q.granted_readers += granted;
                    self.wake.notify_all();
                    // Loop again: if the next waiter is a writer and all the
                    // granted readers are still only *about to run*, it still
                    // cannot be granted (readers were added to the count), so
                    // the loop will return on the writer branch.
                }
            }
        }
    }
}

impl std::fmt::Debug for RwSemaphore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let c = self.count.load(Ordering::Relaxed);
        f.debug_struct("RwSemaphore")
            .field("writer_locked", &(c & WRITER_LOCKED != 0))
            .field("waiters_hint", &(c & WAITERS != 0))
            .field("active_readers", &(c & READER_MASK))
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn uncontended_read_write_cycles() {
        let sem = RwSemaphore::new();
        sem.down_read();
        assert_eq!(sem.active_readers(), 1);
        sem.up_read();
        sem.down_write();
        assert!(sem.writer_locked());
        sem.up_write();
        assert!(!sem.writer_locked());
    }

    #[test]
    fn trylock_semantics() {
        let sem = RwSemaphore::new();
        assert!(sem.down_read_trylock());
        assert!(sem.down_read_trylock());
        assert!(!sem.down_write_trylock());
        sem.up_read();
        sem.up_read();
        assert!(sem.down_write_trylock());
        assert!(!sem.down_read_trylock());
        assert!(!sem.down_write_trylock());
        sem.up_write();
    }

    #[test]
    fn writer_exclusion_under_contention() {
        let sem = Arc::new(RwSemaphore::new());
        let counter = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let sem = Arc::clone(&sem);
                let counter = Arc::clone(&counter);
                s.spawn(move || {
                    for _ in 0..1_000 {
                        sem.down_write();
                        let v = counter.load(Ordering::Relaxed);
                        counter.store(v + 1, Ordering::Relaxed);
                        sem.up_write();
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 4_000);
    }

    #[test]
    fn mixed_readers_and_writers_make_progress() {
        let sem = Arc::new(RwSemaphore::new());
        let value = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for t in 0..4 {
                let sem = Arc::clone(&sem);
                let value = Arc::clone(&value);
                s.spawn(move || {
                    for i in 0..500 {
                        if t == 0 || i % 50 == 0 {
                            sem.down_write();
                            value.fetch_add(1, Ordering::Relaxed);
                            sem.up_write();
                        } else {
                            sem.down_read();
                            let _ = value.load(Ordering::Relaxed);
                            sem.up_read();
                        }
                    }
                });
            }
        });
        assert!(value.load(Ordering::Relaxed) >= 500);
    }

    #[test]
    fn queued_writer_eventually_blocks_readers_and_runs() {
        let sem = Arc::new(RwSemaphore::new());
        sem.down_read();
        let entered = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            let sem2 = Arc::clone(&sem);
            let entered2 = Arc::clone(&entered);
            s.spawn(move || {
                sem2.down_write();
                entered2.store(1, Ordering::SeqCst);
                sem2.up_write();
            });
            // Give the writer time to queue (spin limit exhausts quickly).
            std::thread::sleep(std::time::Duration::from_millis(50));
            assert_eq!(entered.load(Ordering::SeqCst), 0);
            // Once the writer has queued (WAITERS set), a new reader must
            // take the slow path rather than barging on the fast path.
            assert!(!sem.down_read_trylock());
            sem.up_read();
        });
        assert_eq!(entered.load(Ordering::SeqCst), 1);
        // Queue drained; fast paths work again.
        assert!(sem.down_read_trylock());
        sem.up_read();
    }

    #[test]
    fn stock_readers_store_to_owner_every_time() {
        let sem = RwSemaphore::with_config(RwsemConfig::stock());
        for _ in 0..10 {
            sem.down_read();
            sem.up_read();
        }
        assert_eq!(sem.reader_owner_stores(), 10);
    }

    #[test]
    fn patched_readers_store_to_owner_once_per_writer_epoch() {
        let sem = RwSemaphore::with_config(RwsemConfig::bravo_patched());
        for _ in 0..10 {
            sem.down_read();
            sem.up_read();
        }
        assert_eq!(sem.reader_owner_stores(), 1);
        // A writer resets the owner; the next reader stores again.
        sem.down_write();
        sem.up_write();
        sem.down_read();
        sem.up_read();
        assert_eq!(sem.reader_owner_stores(), 2);
    }

    #[test]
    fn reader_grouping_wakes_all_leading_readers() {
        // Hold a write lock, queue several readers, release: all readers
        // must be admitted (and concurrently).
        let sem = Arc::new(RwSemaphore::with_config(RwsemConfig {
            spin_limit: 4,
            ..RwsemConfig::stock()
        }));
        sem.down_write();
        let inside = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let sem = Arc::clone(&sem);
                let inside = Arc::clone(&inside);
                s.spawn(move || {
                    sem.down_read();
                    inside.fetch_add(1, Ordering::SeqCst);
                    // Hold briefly so concurrency is observable.
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    sem.up_read();
                });
            }
            std::thread::sleep(std::time::Duration::from_millis(100));
            assert_eq!(inside.load(Ordering::SeqCst), 0);
            sem.up_write();
        });
        assert_eq!(inside.load(Ordering::SeqCst), 4);
    }
}
