//! The BRAVO patch applied to the simulated rwsem (§4 of the paper).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use bravo::clock::now_ns;
use bravo::policy::BiasPolicy;
use bravo::stats::{self, SlowReadReason};
use bravo::vrt::global_table;

use crate::sem::{RwSemaphore, RwsemConfig};

/// The simulated rwsem with the BRAVO read fast path.
///
/// The integration mirrors the kernel patch the paper describes:
///
/// * Readers whose `RBias` check succeeds hash `(current task, semaphore
///   address)` into the process-global visible readers table and CAS the
///   semaphore's address into the slot; on success they skip the shared
///   count word entirely.
/// * The release side re-derives the slot from the same hash and clears it
///   if it holds this semaphore's address, falling back to the underlying
///   `up_read` otherwise. This relies on the same simplifying assumption the
///   kernel patch makes — the task that acquired for read also releases —
///   which all the simulated kernel workloads satisfy.
/// * Writers always take the underlying `down_write`; if `RBias` was set
///   they revoke it and scan the table, and the inhibit-until policy
///   (`N = 9`) bounds the writer slow-down exactly as in user space.
/// * `down_read_trylock` tries the BRAVO fast path first and then the
///   underlying trylock, the option §3 describes and the kernel patch uses.
/// * The underlying semaphore runs with the owner-field fix (readers only
///   set the reader-owned bits when not already set).
pub struct BravoRwSemaphore {
    rbias: AtomicBool,
    inhibit_until: AtomicU64,
    inner: RwSemaphore,
    policy: BiasPolicy,
}

impl Default for BravoRwSemaphore {
    fn default() -> Self {
        Self::new()
    }
}

impl BravoRwSemaphore {
    /// Creates a BRAVO-patched semaphore with the paper's default policy.
    pub fn new() -> Self {
        Self::with_policy(BiasPolicy::paper_default())
    }

    /// Creates the control variant used in §6.1: the patch is present but
    /// `RBias` is never set, so the fast path and revocation never run.
    pub fn with_bias_disabled() -> Self {
        Self::with_policy(BiasPolicy::Disabled)
    }

    /// Creates a BRAVO-patched semaphore with an explicit bias policy.
    pub fn with_policy(policy: BiasPolicy) -> Self {
        Self {
            rbias: AtomicBool::new(false),
            inhibit_until: AtomicU64::new(0),
            inner: RwSemaphore::with_config(RwsemConfig::bravo_patched()),
            policy,
        }
    }

    /// The underlying (patched-configuration) rwsem.
    pub fn inner(&self) -> &RwSemaphore {
        &self.inner
    }

    /// Whether reader bias is currently enabled (racy snapshot).
    pub fn is_reader_biased(&self) -> bool {
        self.rbias.load(Ordering::Relaxed)
    }

    fn addr(&self) -> usize {
        self as *const Self as usize
    }

    fn slot(&self) -> usize {
        // The kernel patch hashes the `current` task pointer with the
        // semaphore address; our task identity is the registered thread id.
        global_table().slot_for(self.addr(), topology::current_thread_id().as_usize())
    }

    /// Kernel `down_read` with the BRAVO fast path.
    pub fn down_read(&self) {
        if self.rbias.load(Ordering::Acquire) {
            let table = global_table();
            let slot = self.slot();
            if table.try_publish(slot, self.addr()) {
                // SeqCst CAS + SeqCst re-check form the store-load fence
                // against the writer's clear-then-scan.
                if self.rbias.load(Ordering::SeqCst) {
                    stats::record_fast_read();
                    return;
                }
                table.clear(slot, self.addr());
                self.slow_read(SlowReadReason::Raced);
                return;
            }
            self.slow_read(SlowReadReason::Collision);
            return;
        }
        self.slow_read(SlowReadReason::BiasDisabled);
    }

    fn slow_read(&self, reason: SlowReadReason) {
        self.inner.down_read();
        self.maybe_enable_bias();
        stats::record_slow_read(reason);
    }

    /// Kernel `down_read_trylock`: BRAVO fast path first, then the
    /// underlying trylock.
    pub fn down_read_trylock(&self) -> bool {
        if self.rbias.load(Ordering::Acquire) {
            let table = global_table();
            let slot = self.slot();
            if table.try_publish(slot, self.addr()) {
                if self.rbias.load(Ordering::SeqCst) {
                    stats::record_fast_read();
                    return true;
                }
                table.clear(slot, self.addr());
            }
        }
        if self.inner.down_read_trylock() {
            self.maybe_enable_bias();
            stats::record_slow_read(SlowReadReason::BiasDisabled);
            true
        } else {
            false
        }
    }

    fn maybe_enable_bias(&self) {
        if !self.rbias.load(Ordering::Relaxed)
            && self
                .policy
                .should_enable(now_ns(), self.inhibit_until.load(Ordering::Relaxed))
        {
            self.rbias.store(true, Ordering::Release);
            stats::record_bias_enabled();
        }
    }

    /// Kernel `up_read`: clears the published slot when the acquisition used
    /// the fast path, otherwise releases the underlying semaphore.
    pub fn up_read(&self) {
        let table = global_table();
        let slot = self.slot();
        if table.peek(slot) == self.addr() {
            table.clear(slot, self.addr());
        } else {
            self.inner.up_read();
        }
    }

    /// Kernel `down_write` with bias revocation.
    pub fn down_write(&self) {
        self.inner.down_write();
        self.revoke_if_biased();
    }

    /// Kernel `down_write_trylock` with bias revocation on success.
    pub fn down_write_trylock(&self) -> bool {
        if self.inner.down_write_trylock() {
            self.revoke_if_biased();
            true
        } else {
            false
        }
    }

    fn revoke_if_biased(&self) {
        if self.rbias.load(Ordering::Relaxed) {
            self.rbias.store(false, Ordering::SeqCst);
            let start = now_ns();
            let table = global_table();
            let conflicts = table.wait_for_readers(self.addr());
            let now = now_ns();
            self.inhibit_until.store(
                self.policy.inhibit_until_after_revocation(start, now),
                Ordering::Relaxed,
            );
            stats::record_revocation_scan(table.len());
            stats::record_write(true, conflicts as u64);
        } else {
            stats::record_write(false, 0);
        }
    }

    /// Kernel `up_write`.
    pub fn up_write(&self) {
        self.inner.up_write();
    }
}

impl std::fmt::Debug for BravoRwSemaphore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BravoRwSemaphore")
            .field("rbias", &self.is_reader_biased())
            .field("inner", &self.inner)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as TestCounter;
    use std::sync::Arc;

    #[test]
    fn fast_path_engages_after_first_slow_read() {
        let sem = BravoRwSemaphore::new();
        sem.down_read();
        sem.up_read();
        assert!(sem.is_reader_biased());
        // Second read goes through the table: the underlying reader count
        // must stay zero while it is held.
        sem.down_read();
        assert_eq!(sem.inner().active_readers(), 0);
        sem.up_read();
    }

    #[test]
    fn writer_revokes_and_waits_for_fast_readers() {
        let sem = Arc::new(BravoRwSemaphore::new());
        sem.down_read();
        sem.up_read();
        sem.down_read(); // fast read, held across the writer's arrival
        let entered = Arc::new(TestCounter::new(0));
        std::thread::scope(|s| {
            let sem2 = Arc::clone(&sem);
            let entered2 = Arc::clone(&entered);
            s.spawn(move || {
                sem2.down_write();
                entered2.store(1, Ordering::SeqCst);
                sem2.up_write();
            });
            std::thread::sleep(std::time::Duration::from_millis(30));
            assert_eq!(
                entered.load(Ordering::SeqCst),
                0,
                "writer entered past a fast reader"
            );
            sem.up_read();
        });
        assert_eq!(entered.load(Ordering::SeqCst), 1);
        assert!(!sem.is_reader_biased());
    }

    #[test]
    fn bias_disabled_variant_never_uses_the_table() {
        let sem = BravoRwSemaphore::with_bias_disabled();
        for _ in 0..5 {
            sem.down_read();
            assert_eq!(sem.inner().active_readers(), 1);
            sem.up_read();
        }
        assert!(!sem.is_reader_biased());
    }

    #[test]
    fn trylock_paths_work_in_both_modes() {
        let sem = BravoRwSemaphore::new();
        assert!(sem.down_read_trylock()); // slow, enables bias
        sem.up_read();
        assert!(sem.down_read_trylock()); // fast
        sem.up_read();
        assert!(sem.down_write_trylock());
        assert!(!sem.down_read_trylock());
        sem.up_write();
    }

    #[test]
    fn exclusion_with_mixed_fast_and_slow_readers() {
        let sem = Arc::new(BravoRwSemaphore::new());
        let value = Arc::new(TestCounter::new(0));
        std::thread::scope(|s| {
            for t in 0..4 {
                let sem = Arc::clone(&sem);
                let value = Arc::clone(&value);
                s.spawn(move || {
                    let mut last = 0;
                    for i in 0..1_000 {
                        if t == 0 && i % 10 == 0 {
                            sem.down_write();
                            let v = value.load(Ordering::Relaxed);
                            value.store(v + 1, Ordering::Relaxed);
                            sem.up_write();
                        } else {
                            sem.down_read();
                            let v = value.load(Ordering::Relaxed);
                            assert!(v >= last, "reader observed time going backwards");
                            last = v;
                            sem.up_read();
                        }
                    }
                });
            }
        });
        assert_eq!(value.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn underlying_config_uses_owner_write_minimization() {
        let sem = BravoRwSemaphore::new();
        assert!(sem.inner().config().minimize_reader_owner_writes);
    }
}
