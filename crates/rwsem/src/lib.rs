//! A user-space simulation of the Linux kernel's reader-writer semaphore
//! (`rwsem`), and the BRAVO integration described in §4 of the paper.
//!
//! The kernel experiments in the paper (locktorture, will-it-scale, Metis)
//! all contend on `rwsem` — most prominently `mmap_sem`, the semaphore
//! protecting each process's virtual-memory-area structures. Since a
//! reproduction cannot patch the host kernel, this crate re-implements the
//! rwsem state machine in user space with the same moving parts:
//!
//! * a shared **count** word combining the active-reader count with a
//!   writer-locked flag and a waiters-present flag (the cache line whose
//!   contention BRAVO removes);
//! * an **owner** field that writers set to their task identity and readers
//!   mark with "reader-owned" bits — including the paper's observation that
//!   the stock kernel lets *every* reader store to it (creating needless
//!   contention) and the patch's fix of writing it only when it changes;
//! * **optimistic spinning** (spin-on-owner) before blocking;
//! * a FIFO **wait queue** with reader-grouping wakeups.
//!
//! [`BravoRwSemaphore`] applies the paper's patch on top: a read fast path
//! through the global visible readers table keyed by `(task, semaphore)`,
//! with the release side locating the slot by re-hashing — the same
//! "acquirer releases" simplifying assumption the kernel patch makes.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod bravo_sem;
mod sem;

pub use bravo_sem::BravoRwSemaphore;
pub use sem::{RwSemaphore, RwsemConfig};

/// Common interface over the stock and BRAVO semaphores so that kernel
/// workload simulators can be written once.
pub trait RwSem: Send + Sync {
    /// Acquires the semaphore for reading (kernel `down_read`).
    fn down_read(&self);
    /// Attempts a non-blocking read acquisition (kernel `down_read_trylock`).
    fn down_read_trylock(&self) -> bool;
    /// Releases a read acquisition (kernel `up_read`).
    fn up_read(&self);
    /// Acquires the semaphore for writing (kernel `down_write`).
    fn down_write(&self);
    /// Attempts a non-blocking write acquisition (kernel `down_write_trylock`).
    fn down_write_trylock(&self) -> bool;
    /// Releases a write acquisition (kernel `up_write`).
    fn up_write(&self);
}

impl RwSem for RwSemaphore {
    fn down_read(&self) {
        RwSemaphore::down_read(self)
    }

    fn down_read_trylock(&self) -> bool {
        RwSemaphore::down_read_trylock(self)
    }

    fn up_read(&self) {
        RwSemaphore::up_read(self)
    }

    fn down_write(&self) {
        RwSemaphore::down_write(self)
    }

    fn down_write_trylock(&self) -> bool {
        RwSemaphore::down_write_trylock(self)
    }

    fn up_write(&self) {
        RwSemaphore::up_write(self)
    }
}

impl RwSem for BravoRwSemaphore {
    fn down_read(&self) {
        BravoRwSemaphore::down_read(self)
    }

    fn down_read_trylock(&self) -> bool {
        BravoRwSemaphore::down_read_trylock(self)
    }

    fn up_read(&self) {
        BravoRwSemaphore::up_read(self)
    }

    fn down_write(&self) {
        BravoRwSemaphore::down_write(self)
    }

    fn down_write_trylock(&self) -> bool {
        BravoRwSemaphore::down_write_trylock(self)
    }

    fn up_write(&self) {
        BravoRwSemaphore::up_write(self)
    }
}

/// Which semaphore implementation a kernel-simulation workload should use —
/// "stock" is the unmodified kernel, "BRAVO" the patched one, matching the
/// two kernels compared in §6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelVariant {
    /// The unmodified rwsem.
    Stock,
    /// rwsem with the BRAVO read fast path.
    Bravo,
    /// rwsem with the BRAVO patch applied but the setting of `RBias`
    /// disabled — the control the paper uses to validate its locktorture
    /// hypothesis (§6.1).
    BravoBiasDisabled,
}

impl KernelVariant {
    /// All variants, in presentation order.
    pub fn all() -> &'static [KernelVariant] {
        &[
            KernelVariant::Stock,
            KernelVariant::Bravo,
            KernelVariant::BravoBiasDisabled,
        ]
    }

    /// Display name used by the harness.
    pub fn name(self) -> &'static str {
        match self {
            KernelVariant::Stock => "stock",
            KernelVariant::Bravo => "BRAVO",
            KernelVariant::BravoBiasDisabled => "BRAVO-nobias",
        }
    }

    /// Parses a name as produced by [`KernelVariant::name`]
    /// (case-insensitive), for the kernel-side binaries' `--lock` flags.
    pub fn parse(name: &str) -> Option<Self> {
        let lowered = name.to_ascii_lowercase();
        Self::all()
            .iter()
            .copied()
            .find(|v| v.name().to_ascii_lowercase() == lowered)
    }

    /// Creates a semaphore of this variant.
    pub fn make_sem(self) -> std::sync::Arc<dyn RwSem> {
        match self {
            KernelVariant::Stock => std::sync::Arc::new(RwSemaphore::new()),
            KernelVariant::Bravo => std::sync::Arc::new(BravoRwSemaphore::new()),
            KernelVariant::BravoBiasDisabled => {
                std::sync::Arc::new(BravoRwSemaphore::with_bias_disabled())
            }
        }
    }
}

impl std::fmt::Display for KernelVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_variants_construct_working_semaphores() {
        for &v in KernelVariant::all() {
            let sem = v.make_sem();
            sem.down_read();
            sem.up_read();
            sem.down_write();
            sem.up_write();
            assert!(sem.down_read_trylock());
            sem.up_read();
            assert!(sem.down_write_trylock());
            sem.up_write();
        }
    }

    #[test]
    fn variant_names_are_distinct() {
        let names: std::collections::HashSet<_> =
            KernelVariant::all().iter().map(|v| v.name()).collect();
        assert_eq!(names.len(), KernelVariant::all().len());
    }
}
