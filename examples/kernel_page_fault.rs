//! The kernel-side story: page-fault traffic on `mmap_sem`, stock vs BRAVO.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example kernel_page_fault
//! ```
//!
//! This drives the simulated memory-management subsystem the way the
//! will-it-scale `page_fault1` benchmark does — every worker maps a chunk,
//! writes one word into each page (a fault that takes `mmap_sem` shared),
//! and unmaps it — first on the stock rwsem, then on the BRAVO-patched one,
//! and prints both rates plus the semaphore-level statistics that explain
//! the difference.

use std::time::Duration;

use bravo_repro::bravo::stats;
use bravo_repro::kernelsim::will_it_scale::{run, WillItScaleBenchmark};
use bravo_repro::rwsem::KernelVariant;

const TASKS: usize = 4;
const INTERVAL: Duration = Duration::from_millis(500);

fn main() {
    println!("simulated will-it-scale page_fault1, {TASKS} tasks, {INTERVAL:?} interval\n");

    let before = stats::snapshot();
    let stock = run(
        WillItScaleBenchmark::PageFault1,
        KernelVariant::Stock,
        TASKS,
        INTERVAL,
    );
    let mid = stats::snapshot();
    let bravo = run(
        WillItScaleBenchmark::PageFault1,
        KernelVariant::Bravo,
        TASKS,
        INTERVAL,
    );
    let after = stats::snapshot();

    let stock_rate = stock.operations as f64 / INTERVAL.as_secs_f64();
    let bravo_rate = bravo.operations as f64 / INTERVAL.as_secs_f64();
    println!(
        "stock kernel : {:>10.0} iterations/s ({} page faults served)",
        stock_rate, stock.page_faults
    );
    println!(
        "BRAVO kernel : {:>10.0} iterations/s ({} page faults served)",
        bravo_rate, bravo.page_faults
    );
    println!("BRAVO/stock  : {:.2}x", bravo_rate / stock_rate.max(1.0));

    let stock_delta = mid.since(&before);
    let bravo_delta = after.since(&mid);
    println!("\nmmap_sem read acquisitions during the BRAVO run:");
    println!(
        "  fast path (visible readers table) : {} ({:.1}%)",
        bravo_delta.fast_reads,
        bravo_delta.fast_read_fraction() * 100.0
    );
    println!(
        "  slow path (shared count word)      : {}",
        bravo_delta.slow_reads()
    );
    println!(
        "  write acquisitions / revocations   : {} / {}",
        bravo_delta.writes, bravo_delta.revocations
    );
    println!(
        "\n(stock run for comparison: {} reads, all through the shared count word)",
        stock_delta.total_reads().max(stock.page_faults)
    );

    // The write-heavy counterpart shows "no harm": mmap1 on both kernels.
    let stock_mmap = run(
        WillItScaleBenchmark::Mmap1,
        KernelVariant::Stock,
        TASKS,
        INTERVAL,
    );
    let bravo_mmap = run(
        WillItScaleBenchmark::Mmap1,
        KernelVariant::Bravo,
        TASKS,
        INTERVAL,
    );
    println!(
        "\nwrite-heavy mmap1 (no benefit expected, and no harm): stock {} vs BRAVO {} iterations",
        stock_mmap.operations, bravo_mmap.operations
    );
}
