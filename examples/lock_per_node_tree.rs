//! A concurrent ordered map with one reader-writer lock per node — the
//! "lock per node or entry" scenario (§5) where a lock's memory footprint
//! matters as much as its scalability.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example lock_per_node_tree
//! ```
//!
//! Distributed-indicator locks like Per-CPU are "prohibitively expensive to
//! store a separate lock per node" (Bronson et al., quoted in the paper):
//! on the paper's 72-way machine one Per-CPU lock is 9216 bytes. BRAVO-BA
//! stays at one cache sector per lock while all instances share a single
//! 32 KiB table. This example builds a hash-partitioned ordered map with a
//! BRAVO-BA lock per bucket, runs a read-dominated mixed workload over it,
//! and prints both the throughput and the per-node footprint comparison.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bravo_repro::bravo::BravoRwLock;
use bravo_repro::rwlocks::footprint::{self, Footprint};
use bravo_repro::rwlocks::{PerCpuRwLock, PhaseFairQueueLock};
use bravo_repro::workloads::harness::WorkloadRng;

/// An ordered map partitioned into buckets, each guarded by its own
/// BRAVO-BA lock. Lookups and range scans take the bucket lock shared;
/// inserts and removals take it exclusively.
struct ShardedTree {
    buckets: Vec<BravoRwLock<BTreeMap<u64, u64>, PhaseFairQueueLock>>,
}

impl ShardedTree {
    fn new(buckets: usize) -> Self {
        Self {
            buckets: (0..buckets.max(1))
                .map(|_| BravoRwLock::new(BTreeMap::new()))
                .collect(),
        }
    }

    fn bucket(&self, key: u64) -> &BravoRwLock<BTreeMap<u64, u64>, PhaseFairQueueLock> {
        &self.buckets[(key as usize) % self.buckets.len()]
    }

    fn get(&self, key: u64) -> Option<u64> {
        self.bucket(key).read().get(&key).copied()
    }

    fn insert(&self, key: u64, value: u64) {
        self.bucket(key).write().insert(key, value);
    }

    fn range_sum(&self, key: u64, span: u64) -> u64 {
        self.bucket(key)
            .read()
            .range(key..key + span)
            .map(|(_, v)| *v)
            .sum()
    }

    fn len(&self) -> usize {
        self.buckets.iter().map(|b| b.read().len()).sum()
    }
}

const BUCKETS: usize = 1024;
const KEYS: u64 = 100_000;
const THREADS: usize = 4;
const INTERVAL: Duration = Duration::from_millis(500);

fn main() {
    let tree = Arc::new(ShardedTree::new(BUCKETS));
    for key in 0..KEYS {
        tree.insert(key, key * 2);
    }
    println!(
        "sharded tree: {BUCKETS} buckets, {} keys preloaded",
        tree.len()
    );

    let stop = Arc::new(AtomicBool::new(false));
    let ops = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let tree = Arc::clone(&tree);
            let stop = Arc::clone(&stop);
            let ops = Arc::clone(&ops);
            s.spawn(move || {
                let mut rng = WorkloadRng::new(t as u64 + 11);
                let mut local = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let key = rng.below(KEYS);
                    match rng.below(100) {
                        0..=89 => {
                            let _ = tree.get(key);
                        }
                        90..=97 => {
                            let _ = tree.range_sum(key, 32);
                        }
                        _ => tree.insert(key, rng.next()),
                    }
                    local += 1;
                }
                ops.fetch_add(local, Ordering::Relaxed);
            });
        }
        std::thread::sleep(INTERVAL);
        stop.store(true, Ordering::Relaxed);
    });

    let rate = ops.load(Ordering::Relaxed) as f64 / INTERVAL.as_secs_f64();
    println!("mixed workload throughput: {rate:.0} ops/s over {THREADS} threads");

    // Footprint comparison for the same per-bucket locking design.
    let ba = PhaseFairQueueLock::default();
    let per_cpu: PerCpuRwLock = PerCpuRwLock::for_machine();
    let bravo_per_lock = ba.sector_footprint(); // BRAVO-BA still fits the same sector (§5).
    println!("\nper-bucket lock footprint if this tree used:");
    println!(
        "  BRAVO-BA : {:>8} bytes/bucket ({} buckets = {} KiB total, + one shared {} KiB table)",
        bravo_per_lock,
        BUCKETS,
        bravo_per_lock * BUCKETS / 1024,
        footprint::shared_table_bytes() / 1024
    );
    println!(
        "  Per-CPU  : {:>8} bytes/bucket ({} buckets = {} KiB total)",
        per_cpu.footprint_bytes(),
        BUCKETS,
        per_cpu.footprint_bytes() * BUCKETS / 1024
    );
}
