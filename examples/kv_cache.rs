//! A read-mostly key-value cache service, the workload class the paper's
//! RocksDB experiments model.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example kv_cache
//! ```
//!
//! The example stands up the mini KV store from the `kvstore` crate twice —
//! once with the plain BA (PF-Q) lock guarding the memtable and once with
//! BRAVO-BA — drives both with the same read-mostly traffic (98 % point
//! reads, 2 % read-modify-writes) and prints the throughput of each along
//! with the BRAVO fast-path statistics.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bravo_repro::bravo::stats;
use bravo_repro::kvstore::Db;
use bravo_repro::rwlocks::LockKind;
use bravo_repro::workloads::harness::WorkloadRng;

const KEYS: u64 = 50_000;
const THREADS: usize = 4;
const INTERVAL: Duration = Duration::from_millis(500);

fn drive(kind: LockKind) -> u64 {
    let db = Arc::new(Db::open_prepopulated(kind, KEYS).expect("catalog kinds always build"));
    let stop = Arc::new(AtomicBool::new(false));
    let ops = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let db = Arc::clone(&db);
            let stop = Arc::clone(&stop);
            let ops = Arc::clone(&ops);
            s.spawn(move || {
                let mut rng = WorkloadRng::new(t as u64 + 1);
                let mut local = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let key = rng.below(KEYS);
                    if rng.bernoulli(0.02) {
                        // Occasional read-modify-write, e.g. a hit counter.
                        db.merge(key, |v| v[3] += 1);
                    } else {
                        let value = db.get(key);
                        assert!(value.is_some(), "pre-populated key {key} vanished");
                    }
                    local += 1;
                }
                ops.fetch_add(local, Ordering::Relaxed);
            });
        }
        std::thread::sleep(INTERVAL);
        stop.store(true, Ordering::Relaxed);
    });

    ops.load(Ordering::Relaxed)
}

fn main() {
    println!("read-mostly cache, {THREADS} worker threads, {KEYS} keys, 2% writes\n");

    let before = stats::snapshot();
    let plain = drive(LockKind::Ba);
    let mid = stats::snapshot();
    let bravo = drive(LockKind::BravoBa);
    let after = stats::snapshot();

    let plain_rate = plain as f64 / INTERVAL.as_secs_f64();
    let bravo_rate = bravo as f64 / INTERVAL.as_secs_f64();
    println!("BA (PF-Q) GetLock      : {plain_rate:>12.0} ops/s");
    println!("BRAVO-BA GetLock       : {bravo_rate:>12.0} ops/s");
    println!(
        "BRAVO/BA throughput    : {:.2}x",
        bravo_rate / plain_rate.max(1.0)
    );

    let ba_delta = mid.since(&before);
    let bravo_delta = after.since(&mid);
    println!(
        "\nBA phase fast-read fraction    : {:.1}% (expected ~0%: BA has no fast path)",
        ba_delta.fast_read_fraction() * 100.0
    );
    println!(
        "BRAVO phase fast-read fraction : {:.1}%",
        bravo_delta.fast_read_fraction() * 100.0
    );
    println!(
        "BRAVO phase revocations        : {} across {} writes",
        bravo_delta.revocations, bravo_delta.writes
    );
}
