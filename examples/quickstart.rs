//! Quickstart: using BRAVO locks from application code.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The example walks through the three ways to use the library — the
//! data-carrying `BravoRwLock`, composing BRAVO over a specific underlying
//! lock from the zoo, and the raw token-based `BravoLock` — and finishes by
//! printing the process-wide BRAVO statistics so you can see the fast path
//! doing its job.

use std::sync::Arc;
use std::thread;

use bravo_repro::bravo::{stats, BravoLock, BravoRwLock};
use bravo_repro::rwlocks::PhaseFairQueueLock;

fn main() {
    let before = stats::snapshot();

    // 1. The everyday API: an RwLock-alike protecting shared data.
    let config: Arc<BravoRwLock<Vec<String>>> =
        Arc::new(BravoRwLock::new(vec!["initial".to_string()]));

    let mut readers = Vec::new();
    for t in 0..4 {
        let config = Arc::clone(&config);
        readers.push(thread::spawn(move || {
            let mut seen = 0usize;
            for _ in 0..50_000 {
                // Read-mostly access: after the first read enables reader
                // bias, these take BRAVO's fast path through the shared
                // visible readers table.
                seen = seen.max(config.read().len());
            }
            println!("reader {t}: saw up to {seen} entries");
        }));
    }

    // One writer updates the configuration a few times; each write revokes
    // reader bias, scans the table, and the inhibit-until policy bounds how
    // much that can cost the writers overall.
    {
        let config = Arc::clone(&config);
        for i in 0..5 {
            config.write().push(format!("update-{i}"));
        }
    }
    for handle in readers {
        handle.join().expect("reader panicked");
    }
    println!("final config entries: {}", config.read().len());

    // 2. Composing BRAVO over a specific underlying lock ("BRAVO-BA").
    let bravo_ba: BravoRwLock<u64, PhaseFairQueueLock> = BravoRwLock::new(0);
    *bravo_ba.write() += 1;
    assert_eq!(*bravo_ba.read(), 1);

    // 3. The raw, token-based form (what kernel-style integrations use).
    let raw: BravoLock<PhaseFairQueueLock> = BravoLock::new();
    let token = raw.read_lock();
    println!("raw read acquisition used fast path: {}", token.is_fast());
    raw.read_unlock(token);

    // Fast-path statistics for everything this process did above.
    let delta = stats::snapshot().since(&before);
    println!(
        "reads: {} total, {:.1}% fast path ({} slow: {} bias-disabled, {} collisions, {} raced)",
        delta.total_reads(),
        delta.fast_read_fraction() * 100.0,
        delta.slow_reads(),
        delta.slow_reads_disabled,
        delta.slow_reads_collision,
        delta.slow_reads_raced,
    );
    println!(
        "writes: {} total, {} required revocation",
        delta.writes, delta.revocations
    );
}
