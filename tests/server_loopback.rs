//! End-to-end test of the `bravod` client/server path: a real TCP socket
//! on loopback, a short mixed workload, and the open-loop load generator.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use bravo_repro::server::loadgen::{self, LoadConfig};
use bravo_repro::server::{Client, Server, ServerConfig};

fn quick_server(spec: &str, keys: u64) -> Server {
    let mut config = ServerConfig::new(spec.parse().expect("valid spec"));
    config.prepopulate = keys;
    Server::bind("127.0.0.1:0", config).expect("bind loopback")
}

#[test]
fn crud_round_trip_over_a_real_socket() {
    let server = quick_server("BRAVO-BA", 16);
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.ping().unwrap();
    // Pre-populated keys are visible.
    assert_eq!(client.get(3).unwrap().unwrap()[0], 3);
    assert_eq!(client.get(999).unwrap(), None);
    // Writes round-trip.
    client.put(999, [9, 8, 7, 6]).unwrap();
    assert_eq!(client.get(999).unwrap(), Some([9, 8, 7, 6]));
    client.merge(999, [1, 1, 1, 1]).unwrap();
    assert_eq!(client.get(999).unwrap(), Some([10, 9, 8, 7]));
    assert!(client.delete(999).unwrap());
    assert!(!client.delete(999).unwrap());
    // Scans are ordered and bounded.
    let entries = client.scan(10, 4).unwrap();
    assert_eq!(
        entries.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
        vec![10, 11, 12, 13]
    );
    assert!(server.connections_accepted() >= 1);
    server.shutdown();
}

#[test]
fn concurrent_connections_run_a_mixed_workload() {
    let server = quick_server("BRAVO-BA?table=numa:2x1024", 64);
    let addr = server.local_addr();
    let total_ops = AtomicU64::new(0);
    std::thread::scope(|s| {
        for conn in 0..4u64 {
            let total_ops = &total_ops;
            s.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for i in 0..200u64 {
                    let key = (conn * 211 + i) % 64;
                    match i % 4 {
                        0 => {
                            client.get(key).unwrap();
                        }
                        1 => client.merge(key, [1, 0, 0, 1]).unwrap(),
                        2 => {
                            client.scan(key, 16).unwrap();
                        }
                        _ => client.put(key, [key; 4]).unwrap(),
                    }
                    total_ops.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(total_ops.load(Ordering::Relaxed), 800);
    assert_eq!(server.connections_accepted(), 4);
    // The server's GetLock recorded traffic through its per-lock sink.
    let stats = server.db().memtable().lock_stats();
    assert!(
        stats.total_reads() > 0,
        "no reads attributed to the GetLock: {stats:?}"
    );
    assert!(stats.writes > 0, "no writes attributed to the GetLock");
    server.shutdown();
}

#[test]
fn open_loop_load_generator_reports_latency_percentiles() {
    let server = quick_server("BRAVO-BA", 256);
    let config = LoadConfig {
        connections: 2,
        rate: 2_000.0,
        duration: Duration::from_millis(200),
        keys: 256,
        ..LoadConfig::quick()
    };
    let report = loadgen::run(server.local_addr(), &config).unwrap();
    assert!(
        report.operations > 0,
        "load generator completed no operations"
    );
    assert_eq!(report.errors, 0, "load generator hit errors: {report:?}");
    assert_eq!(report.latencies.count(), report.operations);
    let (p50, p95, p99) = (report.p50(), report.p95(), report.p99());
    assert!(p50 <= p95 && p95 <= p99, "{p50:?} {p95:?} {p99:?}");
    assert!(report.throughput() > 0.0);
    server.shutdown();
}
