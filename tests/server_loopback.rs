//! End-to-end tests of the `bravod` client/server path: a real TCP socket
//! on loopback, a short mixed workload, and the open-loop load generator —
//! run against **both** serving backends (thread-per-connection and the
//! multiplexed reactor), plus the mux backend's portable scan poller, so
//! every serving discipline answers the same protocol identically.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use bravo_repro::server::loadgen::{self, LoadConfig};
use bravo_repro::server::{BackendKind, Client, Server, ServerConfig};

/// The serving flavours under test: backend plus whether the mux poller is
/// forced onto the portable scan fallback.
fn flavours() -> [(BackendKind, bool); 3] {
    [
        (BackendKind::Threads, false),
        (BackendKind::Mux, false),
        (BackendKind::Mux, true),
    ]
}

fn quick_server(spec: &str, keys: u64, backend: BackendKind, scan_poller: bool) -> Server {
    let mut config = ServerConfig::new(spec.parse().expect("valid spec"));
    config.prepopulate = keys;
    config.backend = backend;
    config.mux_scan_poller = scan_poller;
    Server::bind("127.0.0.1:0", config).expect("bind loopback")
}

#[test]
fn crud_round_trip_over_a_real_socket() {
    for (backend, scan) in flavours() {
        let server = quick_server("BRAVO-BA", 16, backend, scan);
        let mut client = Client::connect(server.local_addr()).unwrap();
        client.ping().unwrap();
        // Pre-populated keys are visible.
        assert_eq!(client.get(3).unwrap().unwrap()[0], 3);
        assert_eq!(client.get(999).unwrap(), None);
        // Writes round-trip.
        client.put(999, [9, 8, 7, 6]).unwrap();
        assert_eq!(client.get(999).unwrap(), Some([9, 8, 7, 6]));
        client.merge(999, [1, 1, 1, 1]).unwrap();
        assert_eq!(client.get(999).unwrap(), Some([10, 9, 8, 7]));
        assert!(client.delete(999).unwrap());
        assert!(!client.delete(999).unwrap());
        // Scans are ordered and bounded.
        let entries = client.scan(10, 4).unwrap();
        assert_eq!(
            entries.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![10, 11, 12, 13]
        );
        assert!(server.connections_accepted() >= 1);
        server.shutdown();
    }
}

#[test]
fn concurrent_connections_run_a_mixed_workload() {
    for (backend, scan) in flavours() {
        let server = quick_server("BRAVO-BA?table=numa:2x1024", 64, backend, scan);
        let addr = server.local_addr();
        let total_ops = AtomicU64::new(0);
        std::thread::scope(|s| {
            for conn in 0..4u64 {
                let total_ops = &total_ops;
                s.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    for i in 0..200u64 {
                        let key = (conn * 211 + i) % 64;
                        match i % 4 {
                            0 => {
                                client.get(key).unwrap();
                            }
                            1 => client.merge(key, [1, 0, 0, 1]).unwrap(),
                            2 => {
                                client.scan(key, 16).unwrap();
                            }
                            _ => client.put(key, [key; 4]).unwrap(),
                        }
                        total_ops.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(total_ops.load(Ordering::Relaxed), 800);
        assert_eq!(server.connections_accepted(), 4);
        // The server's GetLock recorded traffic through its per-lock sink.
        let stats = server.db().lock_stats();
        assert!(
            stats.total_reads() > 0,
            "no reads attributed to the GetLock: {stats:?}"
        );
        assert!(stats.writes > 0, "no writes attributed to the GetLock");
        server.shutdown();
    }
}

/// Batched frames round-trip over a real socket on every serving flavour,
/// against a sharded store: one `MultiGet`/`WriteBatch` frame touches
/// several shards and still answers in input order.
#[test]
fn batched_frames_round_trip_on_every_backend() {
    use kvstore::BatchOp;

    for (backend, scan) in flavours() {
        let server = quick_server("BRAVO-BA?shards=4", 32, backend, scan);
        let mut client = Client::connect(server.local_addr()).unwrap();
        // MultiGet answers line up with the requested keys by position.
        let values = client.multi_get(vec![3, 999, 7, 0]).unwrap();
        assert_eq!(values.len(), 4);
        assert_eq!(values[0].unwrap()[0], 3);
        assert_eq!(values[1], None);
        assert_eq!(values[2].unwrap()[0], 7);
        assert_eq!(values[3].unwrap()[0], 0);
        // WriteBatch applies in order across shards: put, merge over it,
        // delete a prepopulated key.
        let applied = client
            .write_batch(vec![
                BatchOp::Put {
                    key: 100,
                    value: [5, 5, 5, 5],
                },
                BatchOp::Merge {
                    key: 100,
                    delta: [1, 2, 3, 4],
                },
                BatchOp::Delete { key: 3 },
            ])
            .unwrap();
        assert_eq!(applied, 3);
        assert_eq!(client.get(100).unwrap(), Some([6, 7, 8, 9]));
        assert_eq!(client.get(3).unwrap(), None);
        server.shutdown();
    }
}

/// A batched frame delivered one byte at a time still decodes: the mux
/// backend's incremental decoder (and the threaded backend's blocking
/// reader) reassemble partial reads before answering.
#[test]
fn batched_frames_survive_partial_delivery_on_every_backend() {
    use std::io::Write as _;

    use bravo_repro::server::protocol::{read_frame, write_frame, Request, Response};
    use kvstore::BatchOp;

    for (backend, scan) in flavours() {
        let server = quick_server("BRAVO-BA?shards=4", 16, backend, scan);
        let mut stream = std::net::TcpStream::connect(server.local_addr()).unwrap();
        stream.set_nodelay(true).unwrap();
        let mut wire = Vec::new();
        let mut body = Vec::new();
        Request::WriteBatch {
            ops: vec![
                BatchOp::Put {
                    key: 40,
                    value: [4; 4],
                },
                BatchOp::Put {
                    key: 41,
                    value: [5; 4],
                },
            ],
        }
        .encode(&mut body);
        write_frame(&mut wire, &body).unwrap();
        body.clear();
        Request::MultiGet {
            keys: vec![40, 41, 99],
        }
        .encode(&mut body);
        write_frame(&mut wire, &body).unwrap();
        // Dribble the two frames out a few bytes at a time so every
        // header and body crosses a read boundary.
        for chunk in wire.chunks(3) {
            stream.write_all(chunk).unwrap();
            stream.flush().unwrap();
            std::thread::sleep(Duration::from_millis(1));
        }
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut reader = std::io::BufReader::new(stream);
        assert!(read_frame(&mut reader, &mut body).unwrap(), "eof at batch");
        assert_eq!(Response::decode(&body).unwrap(), Response::Batched(2));
        assert!(
            read_frame(&mut reader, &mut body).unwrap(),
            "eof at multiget"
        );
        assert_eq!(
            Response::decode(&body).unwrap(),
            Response::Values(vec![Some([4; 4]), Some([5; 4]), None])
        );
        server.shutdown();
    }
}

/// The batched load generator keeps the open-loop ledger honest: every
/// frame counts `batch` operations and the
/// `scheduled = operations + errors + abandoned` invariant holds, with one
/// latency sample per frame.
#[test]
fn batched_load_generator_counts_operations_not_frames() {
    let server = quick_server("BRAVO-BA?shards=4", 256, BackendKind::Mux, false);
    let batch = 4;
    let config = LoadConfig {
        connections: 2,
        rate: 4_000.0,
        duration: Duration::from_millis(200),
        keys: 256,
        batch,
        ..LoadConfig::quick()
    };
    let report = loadgen::run(server.local_addr(), &config).unwrap();
    assert!(report.operations > 0, "no operations completed");
    assert_eq!(report.errors, 0, "load generator hit errors: {report:?}");
    assert_eq!(
        report.operations % batch as u64,
        0,
        "operations must come in whole frames: {report:?}"
    );
    assert_eq!(
        report.latencies.count() * batch as u64,
        report.operations,
        "one latency sample per frame: {report:?}"
    );
    assert_eq!(report.scheduled, report.operations);
    server.shutdown();
}

#[test]
fn open_loop_load_generator_reports_latency_percentiles() {
    for (backend, scan) in flavours() {
        let server = quick_server("BRAVO-BA", 256, backend, scan);
        let config = LoadConfig {
            connections: 2,
            rate: 2_000.0,
            duration: Duration::from_millis(200),
            keys: 256,
            ..LoadConfig::quick()
        };
        let report = loadgen::run(server.local_addr(), &config).unwrap();
        assert!(
            report.operations > 0,
            "load generator completed no operations"
        );
        assert_eq!(report.errors, 0, "load generator hit errors: {report:?}");
        assert_eq!(report.latencies.count(), report.operations);
        assert_eq!(report.abandoned, 0, "{report:?}");
        assert_eq!(report.scheduled, report.operations);
        let (p50, p95, p99) = (report.p50(), report.p95(), report.p99());
        assert!(p50 <= p95 && p95 <= p99, "{p50:?} {p95:?} {p99:?}");
        assert!(report.throughput() > 0.0);
        assert!(report.achieved_rate() > 0.0);
        server.shutdown();
    }
}

/// Killing the server mid-run turns the rest of the schedule into
/// *abandoned* operations — the open-loop report keeps them in the
/// denominator instead of silently dropping the tail, and the degradation
/// warning fires.
#[test]
fn load_generator_counts_abandoned_operations_when_the_server_dies() {
    let server = quick_server("BRAVO-BA", 64, BackendKind::Threads, false);
    let addr = server.local_addr();
    let config = LoadConfig {
        connections: 2,
        rate: 1_000.0,
        duration: Duration::from_millis(1_500),
        keys: 64,
        ..LoadConfig::quick()
    };
    let killer = std::thread::spawn(move || {
        // Let some traffic through, then pull the plug mid-schedule.
        std::thread::sleep(Duration::from_millis(300));
        server.shutdown();
    });
    let report = loadgen::run(addr, &config).unwrap();
    killer.join().unwrap();
    assert!(report.operations > 0, "no operations before the kill");
    assert!(report.errors > 0, "the kill surfaced no errors: {report:?}");
    assert!(
        report.abandoned > 0,
        "the abandoned schedule tail was dropped: {report:?}"
    );
    assert_eq!(
        report.scheduled,
        report.operations + report.errors + report.abandoned
    );
    assert!(
        report.rate_fraction() < 0.95,
        "a run missing most of its schedule must be degraded: {report:?}"
    );
    assert!(report.degradation_warning().is_some());
}

/// The mux backend answers protocol errors like the threaded one: a
/// malformed frame gets one `Err` response, then the connection closes
/// (the stream is unsynchronized past the bad frame).
#[test]
fn mux_backend_reports_protocol_errors_then_closes() {
    use std::io::{Read as _, Write as _};

    let server = quick_server("BRAVO-BA", 16, BackendKind::Mux, false);
    let mut stream = std::net::TcpStream::connect(server.local_addr()).unwrap();
    // An oversized length prefix: rejected from the header alone.
    stream
        .write_all(&(u32::MAX.to_le_bytes()))
        .expect("write hostile header");
    stream.flush().unwrap();
    // The server answers with one Err frame, then EOF.
    let mut response = Vec::new();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut chunk = [0u8; 1024];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => response.extend_from_slice(&chunk[..n]),
            Err(e) => panic!("read after hostile frame failed: {e}"),
        }
    }
    let mut cursor = std::io::Cursor::new(response);
    let mut body = Vec::new();
    assert!(
        bravo_repro::server::protocol::read_frame(&mut cursor, &mut body).unwrap(),
        "no error response frame before EOF"
    );
    match bravo_repro::server::protocol::Response::decode(&body).unwrap() {
        bravo_repro::server::protocol::Response::Err(message) => {
            assert!(message.contains("exceeds"), "unexpected error: {message}");
        }
        other => panic!("expected an Err response, got {other:?}"),
    }
    // Nothing after the error frame.
    assert!(!bravo_repro::server::protocol::read_frame(&mut cursor, &mut body).unwrap());
    server.shutdown();
}

/// Backpressure: a burst of pipelined max-size scans (each ~41 KB of
/// response for 17 bytes of request) against a peer that only starts
/// reading afterwards. The server must pause request processing at its
/// per-connection high-water mark instead of buffering every response —
/// and then resume cleanly as the peer drains, answering everything in
/// order without deadlocking.
#[test]
fn mux_backend_backpressures_pipelined_scans_without_deadlock() {
    use std::io::Write as _;

    use bravo_repro::server::protocol::{read_frame, write_frame, Request, Response};

    const BURST: usize = 200;

    let server = quick_server("BRAVO-BA", 4_096, BackendKind::Mux, false);
    let mut stream = std::net::TcpStream::connect(server.local_addr()).unwrap();
    let mut wire = Vec::new();
    let mut body = Vec::new();
    for _ in 0..BURST {
        body.clear();
        Request::Scan {
            start: 0,
            limit: 1024,
        }
        .encode(&mut body);
        write_frame(&mut wire, &body).unwrap();
    }
    stream.write_all(&wire).unwrap();
    stream.flush().unwrap();
    // Let the server hit its high-water mark before we read a byte.
    std::thread::sleep(Duration::from_millis(100));

    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = std::io::BufReader::new(stream);
    for i in 0..BURST {
        assert!(
            read_frame(&mut reader, &mut body).unwrap(),
            "eof after {i} of {BURST} responses"
        );
        match Response::decode(&body).unwrap() {
            Response::Entries(entries) => assert_eq!(entries.len(), 1024, "response {i}"),
            other => panic!("expected entries for scan {i}, got {other:?}"),
        }
    }
    server.shutdown();
}

/// A peer that pipelines past the high-water mark and then *never* reads
/// is dropped by the mux worker's stall sweep (the analogue of the
/// threaded backend's socket write timeout) instead of holding its
/// connection slot and buffers forever.
#[test]
fn mux_backend_drops_peers_that_stop_reading() {
    use std::io::{Read as _, Write as _};

    use bravo_repro::server::protocol::{write_frame, Request};

    let server = quick_server("BRAVO-BA", 4_096, BackendKind::Mux, false);
    let mut stream = std::net::TcpStream::connect(server.local_addr()).unwrap();
    let mut wire = Vec::new();
    let mut body = Vec::new();
    for _ in 0..400 {
        body.clear();
        Request::Scan {
            start: 0,
            limit: 1024,
        }
        .encode(&mut body);
        write_frame(&mut wire, &body).unwrap();
    }
    stream.write_all(&wire).unwrap();
    stream.flush().unwrap();
    // Do not read anything: the server's flush blocks once the kernel
    // buffers fill, the stall clock starts, and the sweep (1s deadline +
    // 500ms sweep granularity) drops the connection.
    std::thread::sleep(Duration::from_millis(2_500));
    // Whatever was already in flight drains, then the teardown surfaces
    // as EOF or a reset — not a full-timeout hang.
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let begin = std::time::Instant::now();
    let mut chunk = [0u8; 64 * 1024];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(_) => continue,
            Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => break,
            Err(e) => panic!("expected EOF or reset from the dropped connection, got {e}"),
        }
    }
    assert!(
        begin.elapsed() < Duration::from_secs(5),
        "the stalled connection was not torn down"
    );
    server.shutdown();
}

/// Pipelining: the mux backend answers back-to-back requests written as
/// one burst, in order — the incremental decoder peels frames out of a
/// single read.
#[test]
fn mux_backend_answers_pipelined_requests_in_order() {
    use std::io::Write as _;

    use bravo_repro::server::protocol::{read_frame, write_frame, Request, Response};

    let server = quick_server("BRAVO-BA", 32, BackendKind::Mux, false);
    let mut stream = std::net::TcpStream::connect(server.local_addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut wire = Vec::new();
    let mut body = Vec::new();
    for key in 0..16u64 {
        body.clear();
        Request::Get { key }.encode(&mut body);
        write_frame(&mut wire, &body).unwrap();
    }
    stream.write_all(&wire).unwrap();
    stream.flush().unwrap();

    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
    for key in 0..16u64 {
        assert!(read_frame(&mut reader, &mut body).unwrap(), "eof at {key}");
        match Response::decode(&body).unwrap() {
            Response::Value(value) => assert_eq!(value[0], key, "answers out of order"),
            other => panic!("expected a value for key {key}, got {other:?}"),
        }
    }
    server.shutdown();
}
