//! Shutdown-under-load tests for both `bravod` backends.
//!
//! The bug these pin down: the original threaded backend's `shutdown` only
//! joined the accept thread — connection-handler threads were discarded at
//! spawn, so a handler blocked in a read on an idle connection outlived
//! `shutdown()` indefinitely. Now every backend joins *everything* it
//! spawned before `shutdown` returns, and reports what it joined via
//! [`ShutdownStats`] so these tests can assert nothing was leaked.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bravo_repro::server::{BackendKind, Client, Server, ServerConfig};

const IDLE_CONNECTIONS: usize = 8;
const ACTIVE_CONNECTIONS: usize = 4;

/// Opens `IDLE_CONNECTIONS` connections that go quiet after one ping (their
/// handlers park in a read) plus `ACTIVE_CONNECTIONS` clients hammering the
/// store from background threads, then shuts the server down mid-traffic.
/// Shutdown must return promptly and account for every connection.
fn shutdown_under_load(backend: BackendKind, spec: &str) {
    let mut config = ServerConfig::new(spec.parse().expect("valid spec"));
    config.prepopulate = 64;
    config.backend = backend;
    let server = Server::bind("127.0.0.1:0", config).expect("bind loopback");
    let addr = server.local_addr();

    // Idle connections: one ping proves the handler is up, then silence —
    // the handler (threads) or reactor registration (mux) sits in a read
    // with no traffic. Kept alive until after shutdown.
    let mut idle = Vec::new();
    for _ in 0..IDLE_CONNECTIONS {
        let mut client = Client::connect(addr).expect("connect idle");
        client.ping().expect("ping");
        idle.push(client);
    }

    let stop_requested = Arc::new(AtomicBool::new(false));
    let active_ops = Arc::new(AtomicU64::new(0));
    let active: Vec<_> = (0..ACTIVE_CONNECTIONS)
        .map(|conn| {
            let stop_requested = Arc::clone(&stop_requested);
            let active_ops = Arc::clone(&active_ops);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect active");
                let mut key = conn as u64;
                loop {
                    key = (key + 7) % 64;
                    let result = if key % 3 == 0 {
                        client.merge(key, [1; 4]).map(|_| ())
                    } else {
                        client.get(key).map(|_| ())
                    };
                    match result {
                        Ok(()) => {
                            active_ops.fetch_add(1, Ordering::Relaxed);
                        }
                        // The server tore the socket down mid-shutdown:
                        // exactly what this test provokes.
                        Err(_) => break,
                    }
                    if stop_requested.load(Ordering::Relaxed) {
                        // Keep issuing until the server actually goes away,
                        // but bail out eventually if it never does.
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            })
        })
        .collect();

    // Let real traffic flow before pulling the plug.
    let traffic_deadline = Instant::now() + Duration::from_secs(5);
    while active_ops.load(Ordering::Relaxed) < 50 {
        assert!(
            Instant::now() < traffic_deadline,
            "active connections made no progress"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // The TCP handshake completes before the server's accept loop runs, so
    // give the counter a moment to catch up with the last connect.
    let expected = (IDLE_CONNECTIONS + ACTIVE_CONNECTIONS) as u64;
    let accept_deadline = Instant::now() + Duration::from_secs(5);
    while server.connections_accepted() < expected {
        assert!(
            Instant::now() < accept_deadline,
            "only {} of {expected} connections accepted",
            server.connections_accepted()
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    stop_requested.store(true, Ordering::Relaxed);
    let begin = Instant::now();
    let stats = server.shutdown();
    let took = begin.elapsed();

    // Promptness: handlers blocked in reads observe the stop flag via
    // their read timeout (threads) or the reactor tears them down (mux);
    // nothing waits on client EOFs.
    assert!(
        took < Duration::from_secs(5),
        "shutdown took {took:?} with idle connections open ({backend})"
    );
    match backend {
        BackendKind::Threads => {
            assert_eq!(
                stats.handlers_joined, expected,
                "not every handler thread was joined: {stats:?}"
            );
            assert_eq!(stats.connections_closed, expected, "{stats:?}");
            assert_eq!(stats.workers_joined, 0, "{stats:?}");
        }
        BackendKind::Mux => {
            assert!(stats.workers_joined >= 1, "{stats:?}");
            assert_eq!(
                stats.connections_closed, expected,
                "not every multiplexed connection was torn down: {stats:?}"
            );
            assert_eq!(stats.handlers_joined, 0, "{stats:?}");
        }
    }

    // With the server gone, the active clients' next operation fails and
    // their threads exit; a hang here would mean shutdown left sockets
    // half-alive.
    for handle in active {
        handle.join().expect("active client panicked");
    }
    // Idle clients observe the close too.
    for client in &mut idle {
        assert!(
            client.ping().is_err(),
            "server answered a ping after shutdown"
        );
    }
}

#[test]
fn threaded_shutdown_joins_every_handler_under_load() {
    shutdown_under_load(BackendKind::Threads, "BRAVO-BA");
}

#[test]
fn mux_shutdown_tears_down_every_connection_under_load() {
    shutdown_under_load(BackendKind::Mux, "BRAVO-BA");
}

// With `wait=park`, a handler blocked on the GetLock is parked in the
// kernel rather than spinning; shutdown must still wake and join every
// such handler (a leaked parked thread would hang the join below).

#[test]
fn threaded_shutdown_joins_every_handler_with_parking_locks() {
    shutdown_under_load(BackendKind::Threads, "BRAVO-BA?wait=park&adapt=on");
}

#[test]
fn mux_shutdown_tears_down_every_connection_with_parking_locks() {
    shutdown_under_load(BackendKind::Mux, "BRAVO-BA?wait=park&adapt=on");
}

/// A second shutdown path: dropping the server (no explicit `shutdown()`)
/// must also join everything — `Drop` and `shutdown` share the same
/// idempotent teardown.
#[test]
fn dropping_the_server_with_idle_connections_does_not_hang() {
    for backend in BackendKind::all() {
        let mut config = ServerConfig::new("BRAVO-BA".parse().expect("valid spec"));
        config.prepopulate = 16;
        config.backend = backend;
        let server = Server::bind("127.0.0.1:0", config).expect("bind loopback");
        let addr = server.local_addr();
        let mut client = Client::connect(addr).expect("connect");
        client.ping().expect("ping");
        let begin = Instant::now();
        drop(server);
        assert!(
            begin.elapsed() < Duration::from_secs(5),
            "drop hung on an idle connection ({backend})"
        );
        assert!(client.ping().is_err());
    }
}
