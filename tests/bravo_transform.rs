//! Cross-crate integration tests: the BRAVO transformation composed with
//! every lock in the zoo.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bravo_repro::bravo::{
    stats, BiasPolicy, BravoLock, BravoRwLock, RawRwLock, RawTryRwLock, ReentrantBravo,
};
use bravo_repro::rwlocks::{
    CohortRwLock, CounterRwLock, FairRwLock, LockKind, PerCpuRwLock, PhaseFairQueueLock,
    PhaseFairTicketLock, PthreadRwLock,
};

/// Generic exclusion + visibility torture run for a BRAVO-wrapped lock.
fn torture_bravo<L: RawRwLock + 'static>() {
    let lock: Arc<BravoRwLock<(u64, u64), L>> = Arc::new(BravoRwLock::new((0, 0)));
    std::thread::scope(|s| {
        for t in 0..4 {
            let lock = Arc::clone(&lock);
            s.spawn(move || {
                for i in 0..2_000u64 {
                    if t == 0 || i % 100 == 0 {
                        let mut guard = lock.write();
                        guard.0 += 1;
                        guard.1 += 1;
                    } else {
                        let guard = lock.read();
                        assert_eq!(guard.0, guard.1, "torn read through BRAVO guard");
                    }
                }
            });
        }
    });
    let final_value = *lock.read();
    assert_eq!(final_value.0, final_value.1);
    assert!(final_value.0 >= 2_000);
}

#[test]
fn bravo_over_every_underlying_lock_preserves_exclusion() {
    torture_bravo::<CounterRwLock>();
    torture_bravo::<PhaseFairTicketLock>();
    torture_bravo::<PhaseFairQueueLock>();
    torture_bravo::<PthreadRwLock>();
    torture_bravo::<FairRwLock>();
    torture_bravo::<CohortRwLock>();
    torture_bravo::<PerCpuRwLock>();
}

#[test]
fn fast_path_engages_for_read_mostly_traffic_on_bravo_ba() {
    let before = stats::snapshot();
    let lock: BravoRwLock<u64, PhaseFairQueueLock> = BravoRwLock::new(7);
    // First read is slow and enables bias; everything after should be fast.
    for _ in 0..1_000 {
        assert_eq!(*lock.read(), 7);
    }
    let delta = stats::snapshot().since(&before);
    assert!(
        delta.fast_reads >= 900,
        "expected the vast majority of 1000 reads on the fast path, got {}",
        delta.fast_reads
    );
}

#[test]
fn revocation_disables_fast_path_until_inhibition_expires() {
    let lock: BravoLock<PhaseFairQueueLock> = BravoLock::new();
    // Prime bias, hold a fast read while a writer revokes so the revocation
    // has measurable cost, establishing a non-trivial inhibition window.
    lock.read_unlock(lock.read_lock());
    let held = lock.read_lock();
    assert!(held.is_fast());
    std::thread::scope(|s| {
        s.spawn(|| {
            std::thread::sleep(Duration::from_millis(10));
            lock.read_unlock(held);
        });
        lock.write_lock();
        lock.write_unlock();
    });
    // Inside the inhibition window reads must be slow and must not re-enable
    // bias.
    let token = lock.read_lock();
    assert!(!token.is_fast());
    lock.read_unlock(token);
    assert!(!lock.is_reader_biased());
}

#[test]
fn preference_of_the_underlying_lock_is_preserved() {
    // §3: "if the underlying lock algorithm A has reader preference or
    // writer preference, then BRAVO-A will exhibit that same property."
    // Reader-preference underlying lock (pthread): a new reader is admitted
    // even while a writer waits.
    let pthread_based: Arc<ReentrantBravo<PthreadRwLock>> = Arc::new(ReentrantBravo::new());
    pthread_based.lock_shared();
    std::thread::scope(|s| {
        let l = Arc::clone(&pthread_based);
        s.spawn(move || {
            l.lock_exclusive();
            l.unlock_exclusive();
        });
        std::thread::sleep(Duration::from_millis(30));
        assert!(
            pthread_based.try_lock_shared().is_ok(),
            "BRAVO-pthread lost the underlying lock's reader preference"
        );
        pthread_based.unlock_shared();
        pthread_based.unlock_shared();
    });

    // Phase-fair underlying lock (BA): a new reader is NOT admitted while a
    // writer waits. Admission policy is a property of the *slow* path, so
    // run this check with bias disabled (with bias enabled the fast path
    // legitimately admits readers that never consult the underlying lock —
    // writers resolve those conflicts at revocation time instead).
    let ba_based: Arc<ReentrantBravo<PhaseFairQueueLock>> = Arc::new(ReentrantBravo::from_lock(
        BravoLock::with_policy(BiasPolicy::Disabled),
    ));
    ba_based.lock_shared();
    std::thread::scope(|s| {
        let l = Arc::clone(&ba_based);
        s.spawn(move || {
            l.lock_exclusive();
            l.unlock_exclusive();
        });
        std::thread::sleep(Duration::from_millis(30));
        assert!(
            ba_based.try_lock_shared().is_err(),
            "BRAVO-BA lost the underlying lock's phase-fair writer protection"
        );
        ba_based.unlock_shared();
    });
}

#[test]
fn disabled_policy_behaves_exactly_like_the_underlying_lock() {
    let before = stats::snapshot();
    let lock: BravoLock<CounterRwLock> = BravoLock::with_policy(BiasPolicy::Disabled);
    for _ in 0..100 {
        let t = lock.read_lock();
        assert!(!t.is_fast());
        lock.read_unlock(t);
    }
    lock.write_lock();
    lock.write_unlock();
    assert!(!lock.is_reader_biased());
    let delta = stats::snapshot().since(&before);
    assert!(delta.revocations == 0 || delta.revocations < delta.writes);
}

#[test]
fn every_catalog_lock_survives_a_mixed_stress_run() {
    for &kind in LockKind::all() {
        let lock = Arc::new(kind.build());
        let counter = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for t in 0..3 {
                let lock = Arc::clone(&lock);
                let counter = Arc::clone(&counter);
                s.spawn(move || {
                    for i in 0..1_000u64 {
                        if (i + t) % 20 == 0 {
                            lock.lock_exclusive();
                            let v = counter.load(Ordering::Relaxed);
                            counter.store(v + 1, Ordering::Relaxed);
                            lock.unlock_exclusive();
                        } else {
                            lock.lock_shared();
                            std::hint::black_box(counter.load(Ordering::Relaxed));
                            lock.unlock_shared();
                        }
                    }
                });
            }
        });
        assert_eq!(
            counter.load(Ordering::Relaxed),
            150,
            "lost updates under {kind}"
        );
    }
}

#[test]
fn writer_slowdown_guard_bounds_revocation_frequency() {
    // With N = 9, after a revocation costing ~R the lock must not be
    // re-biased for ~9R. Drive an alternating read/write pattern and check
    // that the number of revocations stays well below the number of writes.
    let before = stats::snapshot();
    let lock: BravoLock<PhaseFairQueueLock> = BravoLock::new();
    std::thread::scope(|s| {
        let l = &lock;
        // A reader that keeps bias warm whenever the policy allows.
        s.spawn(move || {
            for _ in 0..20_000 {
                let t = l.read_lock();
                l.read_unlock(t);
            }
        });
        // A writer that would revoke on every acquisition if the guard did
        // not inhibit re-biasing.
        s.spawn(move || {
            for _ in 0..2_000 {
                l.write_lock();
                l.write_unlock();
            }
        });
    });
    let delta = stats::snapshot().since(&before);
    assert!(delta.writes >= 2_000);
    assert!(
        delta.revocations * 2 < delta.writes,
        "primum non nocere violated: {} revocations out of {} writes",
        delta.revocations,
        delta.writes
    );
}
