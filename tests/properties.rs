//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;

use bravo_repro::bravo::hash::{mix64, slot_index};
use bravo_repro::bravo::policy::BiasPolicy;
use bravo_repro::bravo::spec::{LockSpec, StatsMode, TableSpec};
use bravo_repro::bravo::vrt::{ReaderTable, VisibleReadersTable};
use bravo_repro::bravo::wait::{WaitMode, WaitQueue};
use bravo_repro::bravo::{BravoRwLock, NumaTable, SectoredTable};
use bravo_repro::rwlocks::{LockKind, PhaseFairQueueLock, RwLock};
use bravo_repro::topology::Machine;

proptest! {
    /// The slot hash must always stay inside the table, for any table size
    /// that is a power of two and any lock address / thread id.
    #[test]
    fn slot_index_is_always_in_range(
        addr in any::<usize>(),
        tid in 0usize..100_000,
        size_log2 in 0u32..20,
    ) {
        let size = 1usize << size_log2;
        prop_assert!(slot_index(addr, tid, size) < size);
    }

    /// mix64 is a bijection, so distinct inputs never collide.
    #[test]
    fn mix64_never_collides_on_distinct_inputs(a in any::<u64>(), b in any::<u64>()) {
        prop_assume!(a != b);
        prop_assert_ne!(mix64(a), mix64(b));
    }

    /// Dispersion: for a fixed lock, the number of distinct slots across
    /// `threads` thread ids must be close to the balls-into-bins
    /// expectation (at least half of the ideal, a very loose bound that
    /// still catches a broken hash).
    #[test]
    fn readers_of_one_lock_disperse_over_the_table(
        addr in (1usize..usize::MAX / 2).prop_map(|a| a * 2),
        threads in 2usize..128,
    ) {
        let size = 4096;
        let distinct: std::collections::HashSet<_> =
            (0..threads).map(|t| slot_index(addr, t, size)).collect();
        prop_assert!(distinct.len() * 2 >= threads.min(size / 2));
    }

    /// Publish/clear sequences leave the visible readers table empty, and
    /// occupancy never exceeds the number of in-flight publications.
    #[test]
    fn vrt_publish_clear_sequences_balance(ops in proptest::collection::vec((0usize..64, 0usize..16), 1..200)) {
        let table = VisibleReadersTable::new(64);
        // Addresses must be non-null and even (word aligned).
        let mut held: Vec<(usize, usize)> = Vec::new();
        for (slot, owner) in ops {
            let addr = (owner + 1) * 8;
            if table.try_publish(slot, addr) {
                held.push((slot, addr));
            }
            prop_assert!(table.occupancy() <= held.len());
        }
        for (slot, addr) in held.drain(..) {
            table.clear(slot, addr);
        }
        prop_assert_eq!(table.occupancy(), 0);
    }

    /// The inhibit-until policy never produces a window that ends before
    /// the revocation finished, and larger N never shrinks the window.
    #[test]
    fn inhibit_policy_windows_are_monotone(
        start in 0u64..u64::MAX / 4,
        cost in 0u64..1_000_000_000,
        n_small in 0u64..16,
        extra in 1u64..16,
    ) {
        let now = start + cost;
        let small = BiasPolicy::InhibitUntil { n: n_small };
        let large = BiasPolicy::InhibitUntil { n: n_small + extra };
        let w_small = small.inhibit_until_after_revocation(start, now);
        let w_large = large.inhibit_until_after_revocation(start, now);
        prop_assert!(w_small >= now);
        prop_assert!(w_large >= w_small);
    }

    /// A BRAVO-2D table maps every lock to exactly one column, and the slot
    /// for (cpu, lock) always lands in that cpu's row.
    #[test]
    fn sectored_table_geometry_is_consistent(
        rows in 1usize..64,
        row_slots in 1usize..256,
        addr in any::<usize>(),
        cpu in 0usize..256,
    ) {
        let t = SectoredTable::new(rows, row_slots);
        let col = t.column_for(addr);
        prop_assert!(col < t.row_slots());
        let slot = t.slot_for(cpu, addr);
        prop_assert_eq!(slot % t.row_slots(), col);
        prop_assert_eq!(slot / t.row_slots(), cpu % t.rows());
        prop_assert!(slot < t.len());
    }

    /// NUMA placement invariants: a publication always lands in the home
    /// node's shard (wrapping when the machine has more nodes than the
    /// table has shards), and the in-shard index stays in range.
    #[test]
    fn numa_table_pins_publications_to_the_home_shard(
        nodes in 1usize..16,
        slots in 1usize..512,
        addr in (1usize..usize::MAX / 2).prop_map(|a| a * 2),
        tid in 0usize..100_000,
        node in 0usize..64,
    ) {
        let t = NumaTable::new(nodes, slots);
        let slot = t.slot_for_thread_on_node(addr, tid, node);
        prop_assert!(slot < t.len());
        prop_assert_eq!(t.shard_of_slot(slot), node % t.node_shards());
    }

    /// Dispersion across NUMA shards: `slot_index` must spread `(lock,
    /// thread)` pairs over a shard without systematic collision — for a
    /// fixed lock, same-node threads occupy close to one slot each (the
    /// same balls-into-bins bound the flat table satisfies), and the
    /// in-shard index must not depend on the node (so cross-node readers
    /// of one lock occupy the *same relative* slot of different shards,
    /// never fewer).
    #[test]
    fn numa_shards_spread_lock_thread_pairs(
        shard_slots_log2 in 4u32..12,
        addr in (1usize..usize::MAX / 2).prop_map(|a| a * 2),
        threads in 2usize..128,
    ) {
        let t = NumaTable::new(4, 1usize << shard_slots_log2);
        let per_node: Vec<std::collections::HashSet<usize>> = (0..4)
            .map(|node| {
                (0..threads)
                    .map(|tid| t.slot_for_thread_on_node(addr, tid, node))
                    .collect()
            })
            .collect();
        for (node, distinct) in per_node.iter().enumerate() {
            // Same loose bound as the flat-table dispersion property: at
            // least half the balls-into-bins ideal.
            prop_assert!(
                distinct.len() * 2 >= threads.min(t.slots_per_shard() / 2),
                "node {node}: only {} distinct slots for {threads} threads",
                distinct.len()
            );
        }
        // The in-shard offset is node-independent by construction.
        for tid in 0..threads {
            let offsets: std::collections::HashSet<usize> = (0..4)
                .map(|node| t.slot_for_thread_on_node(addr, tid, node) % t.slots_per_shard())
                .collect();
            prop_assert_eq!(offsets.len(), 1);
        }
    }

    /// The machine topology maps every CPU to a valid node and is exactly
    /// partitioned.
    #[test]
    fn machine_partitions_cpus_into_nodes(nodes in 1usize..16, per_node in 1usize..64) {
        let m = Machine::new(nodes, per_node);
        let mut per_node_count = vec![0usize; nodes];
        for cpu in 0..m.logical_cpus() {
            per_node_count[m.node_of_cpu(cpu)] += 1;
        }
        prop_assert!(per_node_count.iter().all(|&c| c == per_node));
    }
}

/// Every syntactically constructible LockSpec must survive a round trip
/// through its compact string form (`Display` then `FromStr`).
fn arbitrary_spec_strategy() -> impl Strategy<Value = LockSpec> {
    let kind = (0usize..LockKind::all().len()).prop_map(|i| LockKind::all()[i].name().to_string());
    let bias = prop_oneof![
        (0u64..1_000).prop_map(|n| BiasPolicy::InhibitUntil { n }),
        (1u32..10_000).prop_map(|inverse_p| BiasPolicy::Bernoulli { inverse_p }),
        (0u8..1).prop_map(|_| BiasPolicy::Disabled),
    ];
    let table = prop_oneof![
        (0u8..1).prop_map(|_| TableSpec::Global),
        (1usize..100_000).prop_map(|slots| TableSpec::Private { slots }),
        (1usize..512, 1usize..4_096)
            .prop_map(|(sectors, slots)| TableSpec::Sectored { sectors, slots }),
        (1usize..64, 1usize..65_536).prop_map(|(nodes, slots)| TableSpec::Numa { nodes, slots }),
    ];
    let stats = prop_oneof![
        (0u8..1).prop_map(|_| StatsMode::PerLock),
        (0u8..1).prop_map(|_| StatsMode::Global),
    ];
    let wait = prop_oneof![
        (0u8..1).prop_map(|_| WaitMode::Spin),
        (0u8..1).prop_map(|_| WaitMode::Park),
        (0u8..1).prop_map(|_| WaitMode::Futex),
    ];
    let adapt = any::<bool>();
    let shards = 1usize..64;
    (kind, bias, table, stats, wait, adapt, shards).prop_map(
        |(kind, bias, table, stats, wait, adapt, shards)| {
            LockSpec::new(kind)
                .with_bias(bias)
                .with_table(table)
                .with_stats(stats)
                .with_wait(wait)
                .with_adapt(adapt)
                .with_shards(shards)
        },
    )
}

proptest! {
    #[test]
    fn lock_specs_round_trip_through_display_and_from_str(spec in arbitrary_spec_strategy()) {
        let text = spec.to_string();
        let reparsed: LockSpec = text
            .parse()
            .unwrap_or_else(|e| panic!("'{text}' failed to reparse: {e}"));
        prop_assert_eq!(reparsed, spec);
    }
}

proptest! {
    /// No lost wakeups: for any waiter count and key, every waiter parked on
    /// a condition observes it after the state change + wake, within a
    /// generous deadline. A lost wakeup shows up as a timeout, not a hang.
    #[test]
    fn wait_queue_never_loses_wakeups(
        waiters in 1usize..5,
        key in any::<usize>(),
        delay_us in 0u64..1_500,
    ) {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        let q = Arc::new(WaitQueue::new());
        let ready = Arc::new(AtomicBool::new(false));
        let deadline = bravo_repro::bravo::clock::now_ns() + 10_000_000_000;
        let handles: Vec<_> = (0..waiters)
            .map(|_| {
                let q = Arc::clone(&q);
                let ready = Arc::clone(&ready);
                std::thread::spawn(move || {
                    q.wait_until_deadline(key, || ready.load(Ordering::Acquire), deadline)
                })
            })
            .collect();
        // A randomized delay makes some cases win the spin grace period and
        // others actually park; both must observe the wake.
        std::thread::sleep(std::time::Duration::from_micros(delay_us));
        ready.store(true, Ordering::Release);
        q.wake_all(key);
        for handle in handles {
            prop_assert!(
                handle.join().expect("waiter panicked"),
                "a waiter timed out: wakeup lost"
            );
        }
        prop_assert!(q.is_empty());
    }

    /// FIFO order: waiters registered under one key in a known order are
    /// woken by `wake_one` in that same order.
    #[test]
    fn wait_queue_wake_one_is_fifo(waiters in 2usize..5, key_seed in any::<usize>()) {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::{Arc, Mutex};
        use std::time::{Duration, Instant};

        let key = key_seed;
        let q = Arc::new(WaitQueue::new());
        let flags: Arc<Vec<AtomicBool>> =
            Arc::new((0..waiters).map(|_| AtomicBool::new(false)).collect());
        let order = Arc::new(Mutex::new(Vec::new()));
        let handles: Vec<_> = (0..waiters)
            .map(|i| {
                let q = Arc::clone(&q);
                let flags = Arc::clone(&flags);
                let order = Arc::clone(&order);
                // Stagger registration: waiter i parks only once i earlier
                // waiters are registered, fixing the FIFO order under test.
                let start = Instant::now();
                while q.len() < i {
                    assert!(start.elapsed() < Duration::from_secs(10), "stagger stuck");
                    std::thread::yield_now();
                }
                std::thread::spawn(move || {
                    q.wait_until(key, || flags[i].load(Ordering::Acquire));
                    order.lock().expect("order mutex").push(i);
                })
            })
            .collect();
        let start = Instant::now();
        while q.len() < waiters {
            prop_assert!(start.elapsed() < Duration::from_secs(10), "waiters never parked");
            std::thread::yield_now();
        }
        for i in 0..waiters {
            flags[i].store(true, Ordering::Release);
            prop_assert!(q.wake_one(key), "no waiter to wake for slot {i}");
            let start = Instant::now();
            while order.lock().expect("order mutex").len() < i + 1 {
                prop_assert!(
                    start.elapsed() < Duration::from_secs(10),
                    "woken waiter {i} never returned (FIFO violated?)"
                );
                std::thread::yield_now();
            }
        }
        for handle in handles {
            handle.join().expect("waiter panicked");
        }
        prop_assert_eq!(&*order.lock().expect("order mutex"), &(0..waiters).collect::<Vec<_>>());
    }
}

/// Model-based test: a random sequence of operations applied both to a
/// BRAVO-protected map and to a plain single-threaded model must agree.
#[derive(Debug, Clone)]
enum MapOp {
    Insert(u8, u16),
    Remove(u8),
    Get(u8),
}

fn map_op_strategy() -> impl Strategy<Value = MapOp> {
    prop_oneof![
        (any::<u8>(), any::<u16>()).prop_map(|(k, v)| MapOp::Insert(k, v)),
        any::<u8>().prop_map(MapOp::Remove),
        any::<u8>().prop_map(MapOp::Get),
    ]
}

proptest! {
    #[test]
    fn bravo_rwlock_matches_a_sequential_model(ops in proptest::collection::vec(map_op_strategy(), 1..300)) {
        let lock: BravoRwLock<std::collections::BTreeMap<u8, u16>, PhaseFairQueueLock> =
            BravoRwLock::new(std::collections::BTreeMap::new());
        let mut model = std::collections::BTreeMap::new();
        for op in ops {
            match op {
                MapOp::Insert(k, v) => {
                    lock.write().insert(k, v);
                    model.insert(k, v);
                }
                MapOp::Remove(k) => {
                    let a = lock.write().remove(&k);
                    let b = model.remove(&k);
                    prop_assert_eq!(a, b);
                }
                MapOp::Get(k) => {
                    let a = lock.read().get(&k).copied();
                    let b = model.get(&k).copied();
                    prop_assert_eq!(a, b);
                }
            }
        }
        prop_assert_eq!(&*lock.read(), &model);
    }

    /// The same model check through the generic `rwlocks::RwLock` facade and
    /// a couple of representative lock algorithms.
    #[test]
    fn generic_rwlock_matches_a_sequential_model(ops in proptest::collection::vec(map_op_strategy(), 1..200)) {
        let lock: RwLock<std::collections::BTreeMap<u8, u16>, PhaseFairQueueLock> =
            RwLock::new(std::collections::BTreeMap::new());
        let mut model = std::collections::BTreeMap::new();
        for op in ops {
            match op {
                MapOp::Insert(k, v) => {
                    lock.write().insert(k, v);
                    model.insert(k, v);
                }
                MapOp::Remove(k) => {
                    prop_assert_eq!(lock.write().remove(&k), model.remove(&k));
                }
                MapOp::Get(k) => {
                    prop_assert_eq!(lock.read().get(&k).copied(), model.get(&k).copied());
                }
            }
        }
    }
}

/// Balls-into-bins sanity check from the paper's interference analysis: the
/// per-access true collision probability is roughly `threads / (2 × slots)`
/// and, per the paper's claim, independent of the number of locks.
#[test]
fn collision_rate_matches_balls_into_bins_model() {
    let slots = 4096usize;
    let threads = 64usize;
    for locks in [1usize, 16, 1024] {
        let mut collisions = 0u64;
        let mut trials = 0u64;
        // Simulate rounds where every thread grabs a random lock
        // simultaneously; count pairwise slot collisions per access.
        let mut seed = 0x1234_5678u64;
        for _round in 0..2_000 {
            let mut occupied = std::collections::HashSet::new();
            for t in 0..threads {
                seed = mix64(seed.wrapping_add(t as u64 + 1));
                let lock_addr = ((seed as usize % locks) + 1) * 128;
                let slot = slot_index(lock_addr, t, slots);
                trials += 1;
                if !occupied.insert(slot) {
                    collisions += 1;
                }
            }
        }
        let rate = collisions as f64 / trials as f64;
        let expected = threads as f64 / (2.0 * slots as f64);
        assert!(
            rate < expected * 4.0 + 0.01,
            "collision rate {rate:.4} far above balls-into-bins expectation {expected:.4} at {locks} locks"
        );
    }
}

/// Footprint invariants from §5, checked across the catalog.
#[test]
fn catalog_locks_construct_and_report_names() {
    for &kind in LockKind::all() {
        assert!(!kind.name().is_empty());
        let lock = kind.build();
        lock.lock_shared();
        lock.unlock_shared();
    }
}
