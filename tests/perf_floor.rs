//! Single-threaded throughput floor for the uncontended read path.
//!
//! Regression pin for the single-reader fix: an uncontended reader of
//! `Per-CPU` or `BA` once collapsed to ~8 ops/msec because the reader
//! admission path degraded into a wait loop even with no writer present.
//! The floor here is two orders of magnitude above that collapse and an
//! order of magnitude below healthy debug-build throughput, so it only
//! trips on a real regression — in particular, on the parking wait path
//! accidentally parking (or even just registering) when the lock is free.

use std::time::{Duration, Instant};

use bravo_repro::bravo::wait::WaitMode;
use bravo_repro::rwlocks::{build_lock, LockKind};

const WINDOW: Duration = Duration::from_millis(100);
const FLOOR_OPS_PER_MSEC: f64 = 80.0;

fn single_reader_ops_per_msec(kind: LockKind, wait: WaitMode) -> f64 {
    let spec = kind.spec().with_wait(wait);
    let lock = build_lock(&spec).unwrap_or_else(|e| panic!("build {spec}: {e}"));
    // Warm up thread registration and any lazily allocated wait buckets.
    for _ in 0..100 {
        lock.lock_shared();
        lock.unlock_shared();
    }
    let start = Instant::now();
    let mut ops = 0u64;
    while start.elapsed() < WINDOW {
        for _ in 0..64 {
            lock.lock_shared();
            lock.unlock_shared();
        }
        ops += 64;
    }
    ops as f64 / start.elapsed().as_millis().max(1) as f64
}

#[test]
fn uncontended_single_reader_stays_fast() {
    for kind in [LockKind::PerCpu, LockKind::Ba] {
        for wait in [WaitMode::Spin, WaitMode::Park, WaitMode::Futex] {
            let rate = single_reader_ops_per_msec(kind, wait);
            assert!(
                rate >= FLOOR_OPS_PER_MSEC,
                "{} with wait={}: {rate:.1} ops/msec under the {FLOOR_OPS_PER_MSEC} floor \
                 (single-reader collapse regression?)",
                kind.name(),
                wait,
            );
        }
    }
}

/// Sharding must be free for uncontended point reads: routing through
/// eight key-hashed shards is one hash and one index, so a `shards=8` db
/// must clear the same per-msec floor as the flat layout — and, like any
/// uncontended reader, without a single parked wait.
#[test]
fn sharded_uncontended_point_reads_stay_fast() {
    use bravo_repro::kvstore::Db;

    let parks_before = bravo_repro::bravo::stats::snapshot();
    for shards in [1usize, 8] {
        let spec = LockKind::Ba
            .spec()
            .with_wait(WaitMode::Park)
            .with_shards(shards);
        let db = Db::open_prepopulated(spec.clone(), 1_024)
            .unwrap_or_else(|e| panic!("open {spec}: {e}"));
        // Warm-up (thread registration, shard hash paths).
        for key in 0..100u64 {
            db.get(key);
        }
        let start = Instant::now();
        let mut ops = 0u64;
        while start.elapsed() < WINDOW {
            for key in 0..64u64 {
                assert!(db.get((ops + key) % 1_024).is_some());
            }
            ops += 64;
        }
        let rate = ops as f64 / start.elapsed().as_millis().max(1) as f64;
        assert!(
            rate >= FLOOR_OPS_PER_MSEC,
            "{spec}: {rate:.1} ops/msec under the {FLOOR_OPS_PER_MSEC} floor \
             (shard routing made uncontended reads expensive?)"
        );
    }
    let parks = bravo_repro::bravo::stats::snapshot()
        .since(&parks_before)
        .parked_waits;
    assert_eq!(parks, 0, "uncontended sharded reads appear to be parking");
}

#[test]
fn parking_never_engages_without_contention() {
    // Stronger than the floor: with one thread and no writer, the parking
    // path must never get past the fast-path check, so the global
    // parked-wait counter must not move at all.
    let before = bravo_repro::bravo::stats::snapshot();
    let lock = build_lock(&LockKind::Ba.spec().with_wait(WaitMode::Park)).expect("build BA");
    for _ in 0..10_000 {
        lock.lock_shared();
        lock.unlock_shared();
    }
    let own_parks = bravo_repro::bravo::stats::snapshot()
        .since(&before)
        .parked_waits;
    // The counter is process-global, but every test in this binary is an
    // uncontended single-threaded loop, so nothing here may ever park.
    assert_eq!(
        own_parks, 0,
        "uncontended single reader appears to be parking"
    );
}

#[test]
fn futex_backend_issues_no_syscalls_without_contention() {
    // The futex mirror of the parking pin: with one thread and no writer,
    // an uncontended reader must stay entirely in userspace — zero
    // FUTEX_WAITs, zero FUTEX_WAKEs, zero EAGAIN bounces. The counters are
    // process-global, but every test in this binary is single-threaded and
    // uncontended by design, so a nonzero delta is a real regression.
    let before = bravo_repro::bravo::stats::snapshot();
    let lock = build_lock(&LockKind::Ba.spec().with_wait(WaitMode::Futex)).expect("build BA");
    for _ in 0..10_000 {
        lock.lock_shared();
        lock.unlock_shared();
    }
    let delta = bravo_repro::bravo::stats::snapshot().since(&before);
    assert_eq!(
        (delta.futex_waits, delta.futex_wakes, delta.futex_eagain),
        (0, 0, 0),
        "uncontended single reader reached the futex syscall layer"
    );
}
