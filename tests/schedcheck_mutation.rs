//! The model checker's self-test: re-introduce a real, already-fixed bug
//! and prove schedcheck finds it.
//!
//! The parking-waiter PR fixed a missing wakeup on BRAVO's fast-path
//! back-out: a reader that published its visible-readers-table slot, lost
//! the race with a revoking writer, and cleared the slot *without* waking
//! the writer parked on it. `bravo::lock::mutation` re-introduces exactly
//! that bug behind the `schedcheck` feature. This test asserts the checker
//! (a) passes the clean scenario, (b) drives the seeded bug to its deadlock
//! within a bounded schedule budget, and (c) prints a seed token that
//! replays the failing interleaving byte-for-byte.
//!
//! Runs single-threaded by construction: the mutation flag is process-wide,
//! so this file holds exactly one `#[test]`.
#![cfg(feature = "schedcheck")]

use std::sync::Arc;

use bravo::lock::mutation;
use bravo::{BiasPolicy, BravoLock, DefaultRwLock, RawRwLock, TableHandle, WaitMode};
use schedcheck::{Config, FailureKind};

/// The revocation handshake, built so the lost-wakeup mutation turns into a
/// *global* deadlock the checker can prove:
///
/// * single-slot private table — slot choice (and with it the schedule
///   shape) cannot depend on address-space layout, keeping replays exact;
/// * the reader uses `try_read_lock`, so after backing out against the
///   writer (which holds the underlying lock) it exits instead of blocking —
///   leaving the parked writer alone with provably no waker.
fn revocation_scenario() {
    let lock = Arc::new(
        BravoLock::<DefaultRwLock>::with_parts(
            DefaultRwLock::with_wait(WaitMode::Park),
            TableHandle::private(1),
            BiasPolicy::paper_default(),
        )
        .with_wait_mode(WaitMode::Park),
    );
    // Prime reader bias from the root so the spawned reader takes the fast
    // path (publish slot, re-check rbias).
    lock.read_unlock(lock.read_lock());

    let reader = {
        let lock = Arc::clone(&lock);
        schedcheck::spawn(move || {
            if let Some(token) = lock.try_read_lock() {
                lock.read_unlock(token);
            }
        })
    };
    let writer = {
        let lock = Arc::clone(&lock);
        schedcheck::spawn(move || {
            lock.write_lock();
            lock.write_unlock();
        })
    };
    reader.join();
    writer.join();
}

#[test]
fn checker_finds_reintroduced_lost_wakeup() {
    // Clean first: the fixed protocol must survive the same exploration
    // budget the mutation hunt gets per seed batch.
    mutation::set_lost_wakeup(false);
    let report = schedcheck::run(
        &Config::pct(0xB0A7, 3).with_schedules(300),
        revocation_scenario,
    )
    .unwrap_or_else(|f| panic!("clean revocation scenario failed: {f}"));
    assert_eq!(report.schedules, 300);

    // Re-introduce the bug. The interleaving needs the reader suspended
    // from its publish CAS until the writer has scanned the table and
    // parked — a long descheduling window only priority-based (PCT)
    // exploration finds in reasonable budgets.
    mutation::set_lost_wakeup(true);
    let failure = schedcheck::run(
        &Config::pct(0xB0A7, 3).with_schedules(3_000),
        revocation_scenario,
    )
    .expect_err("the seeded lost wakeup must deadlock some schedule");
    mutation::set_lost_wakeup(false);
    assert_eq!(failure.kind, FailureKind::Deadlock, "failure: {failure}");
    assert!(
        failure.seed_token.starts_with("pct3:"),
        "unexpected seed token {}",
        failure.seed_token
    );
    assert!(
        failure.detail.contains("parked"),
        "deadlock dump should show the parked writer: {}",
        failure.detail
    );

    // The printed token replays the identical interleaving: same failure
    // kind, same step count, same hand-off trace, twice over.
    mutation::set_lost_wakeup(true);
    let replay1 = schedcheck::run(&Config::replay(&failure.seed_token), revocation_scenario)
        .expect_err("replay must reproduce the deadlock");
    let replay2 = schedcheck::run(&Config::replay(&failure.seed_token), revocation_scenario)
        .expect_err("replay must reproduce the deadlock");
    mutation::set_lost_wakeup(false);
    assert_eq!(replay1.kind, FailureKind::Deadlock);
    assert_eq!(
        replay1.trace, failure.trace,
        "replay diverged from original"
    );
    assert_eq!(replay1.trace, replay2.trace, "two replays diverged");
    assert_eq!(replay1.step, failure.step);

    // And with the mutation off, the very interleaving that deadlocked is
    // harmless — the wakeup is the whole difference.
    let report = schedcheck::run(&Config::replay(&failure.seed_token), revocation_scenario)
        .unwrap_or_else(|f| panic!("fixed code failed the bug's own schedule: {f}"));
    assert_eq!(report.schedules, 1);
}
