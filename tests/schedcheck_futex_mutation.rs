//! The model checker's self-test for the futex backend: drop a
//! `FUTEX_WAKE` and prove schedcheck finds the hang.
//!
//! The futex eventcount's liveness rests on one obligation: every
//! generation bump that observes announced waiters must be followed by the
//! wake syscall. `bravo::wait::mutation::set_drop_futex_wake` deletes
//! exactly that wake (the virtual one, under `--features schedcheck`),
//! re-creating the PR 6 lost-wakeup bug class on the futex path. This test
//! asserts the checker (a) passes the clean protocol, (b) drives the seeded
//! bug to its deadlock within a bounded schedule budget, and (c) prints a
//! seed token that replays the failing interleaving byte-for-byte.
//!
//! Runs single-threaded by construction: the mutation flag is process-wide,
//! so this file holds exactly one `#[test]`.
#![cfg(feature = "schedcheck")]

use std::sync::Arc;

use bravo::sync::atomic::{AtomicU64, Ordering};
use bravo::wait::mutation;
use bravo::WaitStrategy;
use schedcheck::{Config, FailureKind};

/// The minimal handoff that depends on the wake: a waiter blocks in the
/// futex eventcount until a flag flips; the setter flips it and notifies.
/// With the wake dropped, the only schedules that still pass are the ones
/// where the waiter never truly sleeps (condition already true at its
/// re-check); PCT's long descheduling windows find the one where it does.
fn futex_handoff_scenario() {
    let strategy = WaitStrategy::futex();
    let flag = Arc::new(AtomicU64::new(0));
    let key = 0xf07e_usize;
    let waiter = {
        let flag = Arc::clone(&flag);
        schedcheck::spawn(move || {
            strategy.wait_until(key, || flag.load(Ordering::SeqCst) == 1);
        })
    };
    let setter = {
        let flag = Arc::clone(&flag);
        schedcheck::spawn(move || {
            flag.store(1, Ordering::SeqCst);
            strategy.notify_all(key);
        })
    };
    waiter.join();
    setter.join();
}

#[test]
fn checker_finds_a_dropped_futex_wake() {
    // Clean first: the intact protocol must survive the same exploration
    // budget the mutation hunt gets per seed batch.
    mutation::set_drop_futex_wake(false);
    let report = schedcheck::run(
        &Config::pct(0xF07E, 3).with_schedules(300),
        futex_handoff_scenario,
    )
    .unwrap_or_else(|f| panic!("clean futex handoff failed: {f}"));
    assert_eq!(report.schedules, 300);

    // Drop the wake. The deadlock needs the waiter suspended between its
    // generation snapshot and its sleep while the setter bumps-and-skips;
    // PCT's priority windows produce that reliably within the budget.
    mutation::set_drop_futex_wake(true);
    let failure = schedcheck::run(
        &Config::pct(0xF07E, 3).with_schedules(3_000),
        futex_handoff_scenario,
    )
    .expect_err("the dropped FUTEX_WAKE must deadlock some schedule");
    mutation::set_drop_futex_wake(false);
    assert_eq!(failure.kind, FailureKind::Deadlock, "failure: {failure}");
    assert!(
        failure.seed_token.starts_with("pct3:"),
        "unexpected seed token {}",
        failure.seed_token
    );
    assert!(
        failure.detail.contains("parked"),
        "deadlock dump should show the sleeping waiter: {}",
        failure.detail
    );

    // The printed token replays the identical interleaving: same failure
    // kind, same step count, same hand-off trace, twice over.
    mutation::set_drop_futex_wake(true);
    let replay1 = schedcheck::run(&Config::replay(&failure.seed_token), futex_handoff_scenario)
        .expect_err("replay must reproduce the deadlock");
    let replay2 = schedcheck::run(&Config::replay(&failure.seed_token), futex_handoff_scenario)
        .expect_err("replay must reproduce the deadlock");
    mutation::set_drop_futex_wake(false);
    assert_eq!(replay1.kind, FailureKind::Deadlock);
    assert_eq!(
        replay1.trace, failure.trace,
        "replay diverged from original"
    );
    assert_eq!(replay1.trace, replay2.trace, "two replays diverged");
    assert_eq!(replay1.step, failure.step);

    // And with the wake restored, the very interleaving that deadlocked is
    // harmless — the syscall is the whole difference.
    let report = schedcheck::run(&Config::replay(&failure.seed_token), futex_handoff_scenario)
        .unwrap_or_else(|f| panic!("intact code failed the bug's own schedule: {f}"));
    assert_eq!(report.schedules, 1);
}
