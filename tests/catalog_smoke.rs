//! Workspace-seam smoke tests: every lock algorithm the catalog advertises
//! must construct through `make_lock`, round-trip its display name through
//! `parse`, and actually enforce reader-writer exclusion when driven through
//! the type-erased `RawRwLock` interface the harness binaries use.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

use bravo_repro::bravo::RawRwLock;
use bravo_repro::rwlocks::{make_lock, LockKind};

#[test]
fn every_lock_kind_round_trips_through_the_catalog() {
    for &kind in LockKind::all() {
        assert_eq!(
            LockKind::parse(kind.name()),
            Some(kind),
            "name '{}' must parse back to its kind",
            kind.name()
        );
        assert_eq!(kind.to_string(), kind.name());

        let lock = make_lock(kind);
        lock.lock_shared();
        lock.unlock_shared();
        lock.lock_exclusive();
        lock.unlock_exclusive();
        // BRAVO-2D documents that it has no try-write path (its
        // `try_lock_exclusive` conservatively always fails); every other
        // kind must succeed uncontended.
        if lock.try_lock_exclusive() {
            lock.unlock_exclusive();
        } else {
            assert_eq!(
                kind,
                LockKind::Bravo2dBa,
                "{kind}: uncontended try-write failed"
            );
        }
        assert!(lock.try_lock_shared(), "{kind}: uncontended try-read");
        lock.unlock_shared();
    }
}

#[test]
fn every_lock_kind_enforces_read_write_exclusion() {
    const WRITERS: usize = 2;
    const READERS: usize = 4;
    const OPS: usize = 2_000;

    for &kind in LockKind::all() {
        let lock: Arc<dyn RawRwLock> = Arc::from(make_lock(kind));
        // Set only inside an exclusive section: readers holding shared
        // permission and writers entering must never observe `true`.
        let in_write = Arc::new(AtomicBool::new(false));
        // Incremented as a pair inside the exclusive section: readers must
        // never observe the counters mid-update.
        let c1 = Arc::new(AtomicU64::new(0));
        let c2 = Arc::new(AtomicU64::new(0));

        let mut handles = Vec::new();
        for _ in 0..WRITERS {
            let (lock, in_write, c1, c2) = (
                Arc::clone(&lock),
                Arc::clone(&in_write),
                Arc::clone(&c1),
                Arc::clone(&c2),
            );
            handles.push(thread::spawn(move || {
                for _ in 0..OPS {
                    lock.lock_exclusive();
                    assert!(
                        !in_write.swap(true, Ordering::SeqCst),
                        "{kind}: two writers inside the exclusive section"
                    );
                    c1.fetch_add(1, Ordering::SeqCst);
                    c2.fetch_add(1, Ordering::SeqCst);
                    in_write.store(false, Ordering::SeqCst);
                    lock.unlock_exclusive();
                }
            }));
        }
        for _ in 0..READERS {
            let (lock, in_write, c1, c2) = (
                Arc::clone(&lock),
                Arc::clone(&in_write),
                Arc::clone(&c1),
                Arc::clone(&c2),
            );
            handles.push(thread::spawn(move || {
                for _ in 0..OPS {
                    lock.lock_shared();
                    assert!(
                        !in_write.load(Ordering::SeqCst),
                        "{kind}: reader overlapped a writer"
                    );
                    let a = c1.load(Ordering::SeqCst);
                    let b = c2.load(Ordering::SeqCst);
                    assert_eq!(a, b, "{kind}: reader observed a torn counter pair");
                    lock.unlock_shared();
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(
            c1.load(Ordering::SeqCst),
            (WRITERS * OPS) as u64,
            "{kind}: lost writes"
        );
    }
}
