//! Workspace-seam smoke tests: every lock algorithm the catalog advertises
//! must construct through the spec-driven builder, round-trip its display
//! name through `parse`, and actually enforce reader-writer exclusion when
//! driven through the type-erased `LockHandle` the harness binaries use.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

use bravo_repro::bravo::spec::{LockSpec, TableSpec};
use bravo_repro::rwlocks::{build_lock, LockKind};

#[test]
fn every_lock_kind_round_trips_through_the_catalog() {
    for &kind in LockKind::all() {
        assert_eq!(
            LockKind::parse(kind.name()),
            Some(kind),
            "name '{}' must parse back to its kind",
            kind.name()
        );
        assert_eq!(kind.to_string(), kind.name());
        // The default spec's label is just the kind name, and the spec
        // string round-trips through the builder.
        let spec = kind.spec();
        assert_eq!(spec.to_string(), kind.name());
        assert_eq!(spec.to_string().parse::<LockSpec>().unwrap(), spec);

        let lock = build_lock(&spec).expect("default spec must build");
        lock.lock_shared();
        lock.unlock_shared();
        lock.lock_exclusive();
        lock.unlock_exclusive();
        // Every cataloged kind now carries an honest try path — the
        // BRAVO-2D variant's historical silently-always-failing try-write
        // is fenced off by the RawTryRwLock split and replaced by a
        // bounded-wait revocation.
        assert!(lock.supports_try_write(), "{kind}: no try path");
        assert!(
            lock.try_lock_exclusive().is_ok(),
            "{kind}: uncontended try-write failed"
        );
        lock.unlock_exclusive();
        assert!(
            lock.try_lock_shared().is_ok(),
            "{kind}: uncontended try-read failed"
        );
        lock.unlock_shared();
    }
}

#[test]
fn sectored_table_is_selectable_purely_via_spec_string() {
    // The acceptance bar for the LockSpec redesign: a BRAVO-2D-style
    // sectored table comes up from a string alone, with per-lock stats.
    let spec: LockSpec = "BRAVO-2D-BA?table=sectored:4x64".parse().unwrap();
    let lock = build_lock(&spec).expect("sectored spec must build");
    assert_eq!(lock.label(), "BRAVO-2D-BA?table=sectored:4x64");
    // Prime bias (first read is slow), then take a fast read.
    lock.lock_shared();
    lock.unlock_shared();
    lock.lock_shared();
    lock.unlock_shared();
    let stats = lock.snapshot();
    assert!(stats.fast_reads >= 1, "sectored fast path not taken");
    // A writer revokes via the column scan.
    lock.lock_exclusive();
    lock.unlock_exclusive();
    assert!(lock.snapshot().revocations >= 1);
}

#[test]
fn private_tables_isolate_two_locks_visible_readers_traffic() {
    // Two locks with single-slot *private* tables: each lock's fast reader
    // occupies its own table, so both fast reads can be held concurrently.
    // If the locks shared one single-slot table, the second acquisition
    // would collide and fall to the slow path — so two concurrent fast
    // reads prove the tables are disjoint.
    let spec = LockKind::BravoBa
        .spec()
        .with_table(TableSpec::Private { slots: 1 });
    let a = build_lock(&spec).unwrap();
    let b = build_lock(&spec).unwrap();
    // Prime bias on both.
    a.lock_shared();
    a.unlock_shared();
    b.lock_shared();
    b.unlock_shared();
    // Hold both read locks at once.
    a.lock_shared();
    b.lock_shared();
    let (sa, sb) = (a.snapshot(), b.snapshot());
    a.unlock_shared();
    b.unlock_shared();
    assert_eq!(sa.fast_reads, 1, "lock A's held read was not fast");
    assert_eq!(sb.fast_reads, 1, "lock B's held read was not fast");
}

#[test]
fn per_lock_snapshots_do_not_bleed_between_concurrent_locks() {
    // Drive a read-only workload on lock A and a write-only workload on
    // lock B concurrently; each handle's snapshot must contain only its own
    // lock's events (the old process-global counters smeared them).
    let a = LockKind::BravoBa.build();
    let b = LockKind::BravoBa.build();
    thread::scope(|s| {
        s.spawn(|| {
            for _ in 0..2_000 {
                a.lock_shared();
                a.unlock_shared();
            }
        });
        s.spawn(|| {
            for _ in 0..2_000 {
                b.lock_exclusive();
                b.unlock_exclusive();
            }
        });
    });
    let (sa, sb) = (a.snapshot(), b.snapshot());
    assert_eq!(sa.writes, 0, "reader lock A recorded someone else's writes");
    assert!(sa.total_reads() >= 2_000);
    assert_eq!(sb.total_reads(), 0, "writer lock B recorded reads");
    assert_eq!(sb.writes, 2_000);
}

#[test]
fn every_lock_kind_enforces_read_write_exclusion() {
    const WRITERS: usize = 2;
    const READERS: usize = 4;
    const OPS: usize = 2_000;

    for &kind in LockKind::all() {
        let lock = Arc::new(kind.build());
        // Set only inside an exclusive section: readers holding shared
        // permission and writers entering must never observe `true`.
        let in_write = Arc::new(AtomicBool::new(false));
        // Incremented as a pair inside the exclusive section: readers must
        // never observe the counters mid-update.
        let c1 = Arc::new(AtomicU64::new(0));
        let c2 = Arc::new(AtomicU64::new(0));

        let mut handles = Vec::new();
        for _ in 0..WRITERS {
            let (lock, in_write, c1, c2) = (
                Arc::clone(&lock),
                Arc::clone(&in_write),
                Arc::clone(&c1),
                Arc::clone(&c2),
            );
            handles.push(thread::spawn(move || {
                for _ in 0..OPS {
                    lock.lock_exclusive();
                    assert!(
                        !in_write.swap(true, Ordering::SeqCst),
                        "{kind}: two writers inside the exclusive section"
                    );
                    c1.fetch_add(1, Ordering::SeqCst);
                    c2.fetch_add(1, Ordering::SeqCst);
                    in_write.store(false, Ordering::SeqCst);
                    lock.unlock_exclusive();
                }
            }));
        }
        for _ in 0..READERS {
            let (lock, in_write, c1, c2) = (
                Arc::clone(&lock),
                Arc::clone(&in_write),
                Arc::clone(&c1),
                Arc::clone(&c2),
            );
            handles.push(thread::spawn(move || {
                for _ in 0..OPS {
                    lock.lock_shared();
                    assert!(
                        !in_write.load(Ordering::SeqCst),
                        "{kind}: reader overlapped a writer"
                    );
                    let a = c1.load(Ordering::SeqCst);
                    let b = c2.load(Ordering::SeqCst);
                    assert_eq!(a, b, "{kind}: reader observed a torn counter pair");
                    lock.unlock_shared();
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(
            c1.load(Ordering::SeqCst),
            (WRITERS * OPS) as u64,
            "{kind}: lost writes"
        );
    }
}
