//! End-to-end runs of every experiment workload at miniature scale,
//! asserting that the pipelines the benchmark harness relies on hold
//! together and produce sane numbers.

use std::time::Duration;

use bravo_repro::kernelsim::locktorture::{self, LockTortureConfig};
use bravo_repro::kernelsim::will_it_scale::{self, WillItScaleBenchmark};
use bravo_repro::kvstore::{run_hash_table_bench, run_readwhilewriting};
use bravo_repro::mapreduce::{generate_random_words, generate_text, wc, wrmem};
use bravo_repro::rwlocks::LockKind;
use bravo_repro::rwsem::KernelVariant;
use bravo_repro::workloads::alternator::alternator;
use bravo_repro::workloads::interference::interference_run;
use bravo_repro::workloads::rwbench::{rwbench, RwBenchConfig};
use bravo_repro::workloads::test_rwlock::{test_rwlock, TestRwlockConfig};

const SHORT: Duration = Duration::from_millis(80);

#[test]
fn figure1_interference_pipeline() {
    let r = interference_run(16, 4, SHORT);
    assert!(r.shared_table_ops > 0);
    assert!(r.private_table_ops > 0);
    // The fraction is a ratio of two noisy throughputs; on a loaded test
    // machine it can wobble, but it must stay within an order of magnitude.
    assert!(
        r.fraction() > 0.1 && r.fraction() < 10.0,
        "fraction {}",
        r.fraction()
    );
}

#[test]
fn figure2_alternator_pipeline() {
    for kind in [LockKind::Ba, LockKind::BravoBa] {
        let lock = kind.build();
        let r = alternator(&lock, 2, SHORT);
        assert!(r.operations > 0, "{kind}: alternator made no progress");
    }
}

#[test]
fn figure3_test_rwlock_pipeline() {
    for kind in [LockKind::Pthread, LockKind::BravoPthread] {
        let lock = kind.build();
        let r = test_rwlock(&lock, TestRwlockConfig::paper(2, SHORT));
        assert!(r.operations > 0, "{kind}: test_rwlock made no progress");
    }
}

#[test]
fn figure4_rwbench_pipeline_covers_all_ratios() {
    for &ratio in RwBenchConfig::paper_write_ratios() {
        let lock = LockKind::BravoBa.build();
        let r = rwbench(&lock, RwBenchConfig::paper(2, ratio, SHORT));
        assert!(r.operations > 0, "P={ratio}: rwbench made no progress");
    }
}

#[test]
fn figure5_and_6_rocksdb_pipelines() {
    let rww = run_readwhilewriting(LockKind::BravoBa, 2, 1_000, SHORT).unwrap();
    assert!(rww.reads > 0 && rww.writes > 0);
    let htb = run_hash_table_bench(LockKind::Ba, 2, 1_024, SHORT).unwrap();
    assert!(htb.reads > 0 && htb.inserts > 0 && htb.erases > 0);
}

#[test]
fn figure7_and_8_locktorture_pipelines() {
    let mixed = locktorture::run(
        KernelVariant::Bravo,
        LockTortureConfig {
            readers: 2,
            writers: 1,
            read_hold: Duration::from_micros(5),
            write_hold: Duration::from_micros(20),
            long_delay_one_in: 0,
            read_long_hold: Duration::ZERO,
            write_long_hold: Duration::ZERO,
            duration: SHORT,
        },
    );
    assert!(mixed.read_acquisitions > 0);
    assert!(mixed.write_acquisitions > 0);

    let read_only = locktorture::run(
        KernelVariant::Stock,
        LockTortureConfig::short_read_sections(2, SHORT),
    );
    assert!(read_only.read_acquisitions > 0);
    assert_eq!(read_only.write_acquisitions, 0);
}

#[test]
fn figure9_will_it_scale_pipelines() {
    for &bench in WillItScaleBenchmark::all() {
        let r = will_it_scale::run(bench, KernelVariant::Bravo, 2, SHORT);
        assert!(r.operations > 0, "{bench} made no progress");
        if bench.is_read_heavy() {
            assert!(r.page_faults > 0, "{bench} should fault pages");
        }
    }
}

#[test]
fn tables_1_and_2_metis_pipelines_agree_across_kernels() {
    let corpus = generate_text(5_000, 17);
    let wc_stock = wc(&corpus, 2, KernelVariant::Stock);
    let wc_bravo = wc(&corpus, 2, KernelVariant::Bravo);
    assert_eq!(wc_stock.distinct_keys, wc_bravo.distinct_keys);
    assert!(wc_bravo.page_faults > 0);

    let records = generate_random_words(3_000, 256, 23);
    let wr_stock = wrmem(&records, 2, KernelVariant::Stock);
    let wr_bravo = wrmem(&records, 2, KernelVariant::Bravo);
    assert_eq!(wr_stock.distinct_keys, wr_bravo.distinct_keys);
}

#[test]
fn bravo_fast_path_dominates_a_read_only_workload() {
    // The headline mechanism end to end: a read-only workload on BRAVO-BA
    // must complete the overwhelming majority of its reads on the fast
    // path. The handle's per-lock statistics make this exact: no other
    // concurrently running test can inflate the counters.
    let lock = LockKind::BravoBa.build();
    let r = test_rwlock(
        &lock,
        TestRwlockConfig {
            readers: 2,
            writers: 0,
            cs_work: 5,
            writer_delay_work: 0,
            duration: Duration::from_millis(150),
        },
    );
    let stats = lock.snapshot();
    assert!(r.operations > 100);
    assert!(
        stats.fast_reads > r.operations / 2,
        "only {} fast reads out of {} operations",
        stats.fast_reads,
        r.operations
    );
}
