//! Cross-shard consistency of the sharded [`kvstore::Db`].
//!
//! The scan contract (see `Db::scan`) is a **per-shard snapshot**: atomic
//! within each shard, merged-and-truncated across shards outside any lock.
//! These tests pin the two halves of that contract:
//!
//! * quiescent equivalence — with no writers in flight, a cross-shard scan
//!   equals the sorted union of the per-shard contents, and a sharded db
//!   answers every operation exactly like a flat (`shards=1`) one;
//! * concurrent integrity — under live writers a scan may be a per-shard
//!   mosaic, but it never contains duplicated keys, out-of-order keys,
//!   out-of-range keys, or torn (half-written) values.

use std::collections::BTreeMap;

use kvstore::memtable::Value;
use kvstore::{BatchOp, Db};
use proptest::prelude::*;
use rwlocks::LockKind;

/// A random op stream as (selector, key, payload-word) triples.
fn ops_strategy() -> impl Strategy<Value = Vec<(u8, u64, u64)>> {
    proptest::collection::vec((0u8..4, 0u64..512, any::<u64>()), 0..128)
}

fn apply_model(model: &mut BTreeMap<u64, Value>, op: (u8, u64, u64)) {
    let (selector, key, word) = op;
    match selector {
        0 => {
            model.insert(key, [word, key, 0, 0]);
        }
        1 => {
            let entry = model.entry(key).or_insert([0; 4]);
            for (slot, delta) in entry.iter_mut().zip([word, 1, 2, 3]) {
                *slot = slot.wrapping_add(delta);
            }
        }
        2 => {
            model.remove(&key);
        }
        _ => {} // gets mutate nothing
    }
}

fn apply_db(db: &Db, op: (u8, u64, u64)) {
    let (selector, key, word) = op;
    match selector {
        0 => db.put(key, [word, key, 0, 0]),
        1 => db.merge(key, |value| {
            for (slot, delta) in value.iter_mut().zip([word, 1, 2, 3]) {
                *slot = slot.wrapping_add(delta);
            }
        }),
        2 => {
            db.delete(key);
        }
        _ => {
            db.get(key);
        }
    }
}

proptest! {
    /// After any op sequence, a cross-shard scan equals the sorted union
    /// of the per-shard contents (each shard read through its own
    /// memtable), equals a sequential BTreeMap model — for 1, 3 and 8
    /// shards alike, at several (start, limit) windows.
    #[test]
    fn scan_is_the_sorted_union_of_shard_contents(ops in ops_strategy()) {
        for shards in [1usize, 3, 8] {
            let spec = LockKind::BravoBa.spec().with_shards(shards);
            let db = Db::open(spec).expect("open sharded db");
            let mut model = BTreeMap::new();
            for &op in &ops {
                apply_db(&db, op);
                apply_model(&mut model, op);
            }
            for (start, limit) in [(0u64, 600usize), (0, 7), (100, 32), (400, 600)] {
                // Reference: union of per-shard scans, merged and cut.
                let mut union: Vec<(u64, Value)> = db
                    .memtables()
                    .iter()
                    .flat_map(|shard| shard.scan(start, limit))
                    .collect();
                union.sort_unstable_by_key(|(k, _)| *k);
                union.truncate(limit);
                let scanned = db.scan(start, limit);
                prop_assert_eq!(&scanned, &union, "shards={} window=({},{})", shards, start, limit);
                // And both match the sequential model.
                let expected: Vec<(u64, Value)> = model
                    .range(start..)
                    .take(limit)
                    .map(|(&k, &v)| (k, v))
                    .collect();
                prop_assert_eq!(&scanned, &expected, "shards={} window=({},{})", shards, start, limit);
            }
            prop_assert_eq!(db.len(), model.len());
        }
    }

    /// Batched entry points agree with their one-at-a-time counterparts on
    /// a sharded db: `multi_get` answers like per-key `get`s in input
    /// order, and `write_batch` lands like sequential puts/merges/deletes.
    #[test]
    fn batched_ops_agree_with_pointwise_ops(ops in ops_strategy()) {
        let batched = Db::open(LockKind::BravoBa.spec().with_shards(4)).expect("open");
        let pointwise = Db::open(LockKind::BravoBa.spec().with_shards(4)).expect("open");
        let batch: Vec<BatchOp> = ops
            .iter()
            .filter_map(|&(selector, key, word)| match selector {
                0 => Some(BatchOp::Put { key, value: [word, key, 0, 0] }),
                1 => Some(BatchOp::Merge { key, delta: [word, 1, 2, 3] }),
                2 => Some(BatchOp::Delete { key }),
                _ => None,
            })
            .collect();
        prop_assert_eq!(batched.write_batch(&batch), batch.len());
        for &op in &ops {
            apply_db(&pointwise, op);
        }
        let keys: Vec<u64> = (0..512).collect();
        let lookups = batched.multi_get(&keys);
        for (&key, looked_up) in keys.iter().zip(&lookups) {
            prop_assert_eq!(looked_up, &pointwise.get(key), "key {}", key);
            prop_assert_eq!(looked_up, &batched.get(key), "key {}", key);
        }
        prop_assert_eq!(batched.scan(0, 600), pointwise.scan(0, 600));
    }
}

/// Under concurrent writers a cross-shard scan is a per-shard mosaic, but
/// it must never show duplicated keys, unsorted or out-of-range keys, or a
/// torn value. Writers keep every value in the recognizable shape
/// `[key, g, g, g]` (whole-value puts), so any mix of two writes is
/// detectable.
#[test]
fn concurrent_scans_never_observe_duplicates_or_torn_values() {
    const KEYS: u64 = 256;
    let db = Db::open_prepopulated(LockKind::BravoBa.spec().with_shards(8), KEYS).expect("open");
    // Overwrite the prepopulated [key, key^0xff, 0, 0] shape with the
    // generation shape the checker recognizes.
    for key in 0..KEYS {
        db.put(key, [key, 0, 0, 0]);
    }
    std::thread::scope(|s| {
        for writer in 0..2u64 {
            let db = &db;
            s.spawn(move || {
                for generation in 1..400u64 {
                    for key in (writer..KEYS).step_by(2) {
                        db.put(key, [key, generation, generation, generation]);
                    }
                }
            });
        }
        for _ in 0..2 {
            let db = &db;
            s.spawn(move || {
                for _ in 0..200 {
                    let entries = db.scan(0, KEYS as usize + 16);
                    let mut last_key = None;
                    for &(key, value) in &entries {
                        assert!(
                            last_key < Some(key),
                            "scan keys unsorted or duplicated around {key}"
                        );
                        last_key = Some(key);
                        assert!(key < KEYS, "scan invented key {key}");
                        assert_eq!(value[0], key, "value landed on the wrong key");
                        assert!(
                            value[1] == value[2] && value[2] == value[3],
                            "torn value for {key}: {value:?}"
                        );
                    }
                }
            });
        }
    });
    // Writers never delete, so the final population is intact.
    assert_eq!(db.len(), KEYS as usize);
}
