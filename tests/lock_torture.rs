//! Lock-torture tier: every catalog spec under oversubscription, in every
//! wait mode (spin, park, futex), pinned by a watchdog.
//!
//! Each run hammers one lock with `2 × available_parallelism` threads — a
//! mix of writers and readers sharing an exclusion checker — for a short
//! wall-clock window. Oversubscription is the point: with more runnable
//! threads than cores, a spinning waiter burns its whole quantum and a
//! parking waiter must round-trip through the kernel, so lost-wakeup and
//! missed-notify bugs that stay latent on idle hosts surface here as hangs.
//!
//! Hangs must fail, not stall CI: a watchdog thread observes per-worker
//! progress counters and, if the run (including the joins) overstays its
//! deadline, dumps every worker's counter to stderr and aborts the test
//! binary. A watchdog firing is always a bug — either a deadlock/lost
//! wakeup in the lock under test or a starvation so complete it amounts to
//! one.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bravo_repro::bravo::wait::WaitMode;
use bravo_repro::rwlocks::{build_lock, LockKind};

/// Measurement window per (kind, wait-mode) cell.
const TORTURE_WINDOW: Duration = Duration::from_millis(100);

/// Watchdog deadline for one cell, joins included. Generous: CI hosts are
/// slow and oversubscribed scheduling is noisy, but a healthy cell finishes
/// in well under a second.
const WATCHDOG_LIMIT: Duration = Duration::from_secs(120);

/// How often the watchdog re-checks for completion.
const WATCHDOG_POLL: Duration = Duration::from_millis(100);

fn torture_threads() -> usize {
    let cpus = std::thread::available_parallelism().map_or(2, |n| n.get());
    (cpus * 2).max(4)
}

/// Where a torture cell currently is, so a watchdog dump states whether the
/// hang is inside the measurement window or in the shutdown joins (a join
/// hang means a worker is stuck inside the lock and never saw `stop`).
const PHASE_RUNNING: u8 = 0;
const PHASE_JOINING: u8 = 1;

fn phase_name(phase: u8) -> &'static str {
    match phase {
        PHASE_RUNNING => "running (measurement window)",
        PHASE_JOINING => "joining workers after stop",
        _ => "unknown",
    }
}

/// Tortures one catalog spec: every worker alternates read and write
/// critical sections, checking mutual exclusion from inside each, and
/// bumps its progress counter per iteration.
fn torture(kind: LockKind, wait: WaitMode) {
    let mut spec = kind.spec().with_wait(wait);
    if kind.is_bravo() {
        // BRAVO kinds also run the adaptive bias controller, so the torture
        // covers policy flips racing revocation.
        spec = spec.with_adapt(true);
    }
    let label = spec.to_string();
    let lock = Arc::new(build_lock(&spec).unwrap_or_else(|e| panic!("build {label}: {e}")));
    let threads = torture_threads();

    let stop = Arc::new(AtomicBool::new(false));
    let done = Arc::new(AtomicBool::new(false));
    let phase = Arc::new(AtomicU8::new(PHASE_RUNNING));
    let progress: Arc<Vec<AtomicU64>> = Arc::new((0..threads).map(|_| AtomicU64::new(0)).collect());
    // Exclusion checker: incremented under the write lock, must never be
    // seen nonzero by a reader or at a second writer's entry.
    let writers_inside = Arc::new(AtomicU64::new(0));

    let watchdog = {
        let done = Arc::clone(&done);
        let phase = Arc::clone(&phase);
        let progress = Arc::clone(&progress);
        let label = label.clone();
        std::thread::spawn(move || {
            let deadline = Instant::now() + WATCHDOG_LIMIT;
            // Last-poll snapshot, so the dump separates workers that are
            // merely slow from workers that have fully stopped advancing.
            let mut last: Vec<u64> = vec![0; progress.len()];
            while !done.load(Ordering::Acquire) {
                if Instant::now() >= deadline {
                    eprintln!(
                        "lock_torture watchdog fired: kind={kind:?} wait={wait} \
                         (spec '{label}') overstayed {WATCHDOG_LIMIT:?} \
                         while {}; per-worker progress:",
                        phase_name(phase.load(Ordering::Acquire)),
                    );
                    for (i, counter) in progress.iter().enumerate() {
                        let now = counter.load(Ordering::Relaxed);
                        let delta = now - last[i];
                        eprintln!(
                            "  worker {i}: {now} iterations ({delta} in the last \
                             {WATCHDOG_POLL:?}{})",
                            if delta == 0 { " — STALLED" } else { "" }
                        );
                    }
                    // Abort instead of panicking: the test thread is stuck
                    // inside the lock under test, so a panic here would
                    // leave the binary hanging anyway.
                    std::process::abort();
                }
                for (i, counter) in progress.iter().enumerate() {
                    last[i] = counter.load(Ordering::Relaxed);
                }
                std::thread::sleep(WATCHDOG_POLL);
            }
        })
    };

    let workers: Vec<_> = (0..threads)
        .map(|i| {
            let lock = Arc::clone(&lock);
            let stop = Arc::clone(&stop);
            let progress = Arc::clone(&progress);
            let writers_inside = Arc::clone(&writers_inside);
            std::thread::spawn(move || {
                let mut iter = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // Every 8th iteration writes; the offset spreads the
                    // writer phases across workers.
                    if (iter + i as u64) % 8 == 0 {
                        lock.lock_exclusive();
                        let inside = writers_inside.fetch_add(1, Ordering::SeqCst);
                        assert_eq!(inside, 0, "two writers inside the critical section");
                        writers_inside.fetch_sub(1, Ordering::SeqCst);
                        lock.unlock_exclusive();
                    } else {
                        lock.lock_shared();
                        let inside = writers_inside.load(Ordering::SeqCst);
                        assert_eq!(inside, 0, "writer inside while a reader holds the lock");
                        lock.unlock_shared();
                    }
                    iter += 1;
                    progress[i].store(iter, Ordering::Relaxed);
                }
            })
        })
        .collect();

    std::thread::sleep(TORTURE_WINDOW);
    stop.store(true, Ordering::Relaxed);
    phase.store(PHASE_JOINING, Ordering::Release);
    for worker in workers {
        worker
            .join()
            .unwrap_or_else(|_| panic!("torture worker panicked under '{label}'"));
    }
    // Liveness, not just absence of deadlock: every worker must have made
    // progress despite oversubscription.
    for (i, counter) in progress.iter().enumerate() {
        assert!(
            counter.load(Ordering::Relaxed) > 0,
            "worker {i} starved completely under '{label}'"
        );
    }
    done.store(true, Ordering::Release);
    watchdog.join().expect("watchdog panicked");
}

#[test]
fn every_catalog_spec_survives_torture_spinning() {
    for &kind in LockKind::all() {
        torture(kind, WaitMode::Spin);
    }
}

#[test]
fn every_catalog_spec_survives_torture_parking() {
    for &kind in LockKind::all() {
        torture(kind, WaitMode::Park);
    }
}

#[test]
fn every_catalog_spec_survives_torture_futex_blocking() {
    // On targets (or under BRAVO_FUTEX_FALLBACK=1) where the syscall is
    // unavailable the dispatch silently runs the park path — the cell is
    // then a duplicate of the parking sweep, which is exactly the fallback
    // contract this tier should hold.
    for &kind in LockKind::all() {
        torture(kind, WaitMode::Futex);
    }
}

/// The parking path must actually be exercised by this tier, not just
/// survive it: under oversubscription at least one waiter of some parking
/// run should overstay the spin grace period and park.
#[test]
fn parking_torture_records_parked_waits() {
    let before = bravo_repro::bravo::stats::snapshot();
    // MCS-fair's queue handoff and BA's reader/writer phases both park
    // readily under contention; run the two cheapest such kinds.
    for kind in [LockKind::Fair, LockKind::Ba] {
        torture(kind, WaitMode::Park);
    }
    let delta = bravo_repro::bravo::stats::snapshot().since(&before);
    assert!(
        delta.parked_waits > 0,
        "no wait ever parked during oversubscribed parking torture"
    );
}

/// Same exercise pin for the futex backend: when it is active, the torture
/// must drive real `FUTEX_WAIT`s (visible in the new counters), not dodge
/// the kernel through the spin grace every time.
#[test]
fn futex_torture_records_futex_waits() {
    if !bravo_repro::bravo::wait::futex_backend_active() {
        eprintln!("futex backend inactive (non-Linux or fallback forced); skipping");
        return;
    }
    let before = bravo_repro::bravo::stats::snapshot();
    for kind in [LockKind::Fair, LockKind::Ba] {
        torture(kind, WaitMode::Futex);
    }
    let delta = bravo_repro::bravo::stats::snapshot().since(&before);
    assert!(
        delta.futex_waits > 0,
        "no wait ever reached FUTEX_WAIT during oversubscribed futex torture"
    );
    // Sleeps are double-counted on parked_waits so wait modes stay
    // comparable in the reports; hold that invariant here.
    assert!(
        delta.parked_waits > 0,
        "futex sleeps must also count on the cross-mode parked_waits column"
    );
}
