//! Deterministic model-checking corpus over the lock catalog.
//!
//! Build with `--features schedcheck`: the `bravo::sync` facade then routes
//! every atomic, mutex, and park through schedcheck's instrumented shims, and
//! each test below explores a fixed-seed set of thread interleavings with the
//! checker's serialized scheduler. Every test is deterministic: a failure
//! prints a `SCHEDCHECK_SEED` token that replays the exact interleaving.
#![cfg(feature = "schedcheck")]

use std::collections::HashSet;
use std::sync::Arc;

use bravo::sync::atomic::{AtomicU64, Ordering};
use bravo::{BiasPolicy, BravoLock, DefaultRwLock, RawRwLock, TableHandle, WaitMode, WaitStrategy};
use rwlocks::{CounterRwLock, RawMutex, TicketMutex};
use schedcheck::{Config, FailureKind};

/// Readers and one non-atomically-incrementing writer over a raw rwlock.
/// Exclusion violations surface as a lost update; lost wakeups or deadlocks
/// surface as the checker's global-deadlock detection.
fn rwlock_scenario<L>(make: fn() -> L) -> impl Fn() + Send + Sync + 'static
where
    L: RawRwLock + Send + Sync + 'static,
{
    move || {
        let lock = Arc::new(make());
        let data = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let lock = Arc::clone(&lock);
            let data = Arc::clone(&data);
            handles.push(schedcheck::spawn(move || {
                lock.lock_shared();
                let _ = data.load(Ordering::SeqCst);
                lock.unlock_shared();
            }));
        }
        for _ in 0..2 {
            let lock = Arc::clone(&lock);
            let data = Arc::clone(&data);
            handles.push(schedcheck::spawn(move || {
                lock.lock_exclusive();
                // Deliberately non-atomic read-modify-write: only mutual
                // exclusion makes the final count come out right.
                let v = data.load(Ordering::SeqCst);
                data.store(v + 1, Ordering::SeqCst);
                lock.unlock_exclusive();
            }));
        }
        for h in handles {
            h.join();
        }
        assert_eq!(data.load(Ordering::SeqCst), 2, "writer update lost");
    }
}

#[test]
fn default_rwlock_park_mode_survives_pct() {
    let report = schedcheck::check(
        &Config::pct(0xD3F0, 3).with_schedules(200),
        rwlock_scenario(|| DefaultRwLock::with_wait(WaitMode::Park)),
    );
    assert_eq!(report.schedules, 200);
}

#[test]
fn counter_rwlock_park_mode_survives_pct() {
    schedcheck::check(
        &Config::pct(0xC0FE, 3).with_schedules(200),
        rwlock_scenario(|| CounterRwLock::with_wait(WaitMode::Park)),
    );
}

#[test]
fn ticket_mutex_park_mode_excludes_under_pct() {
    schedcheck::check(&Config::pct(0x71C4, 3).with_schedules(200), || {
        let m = Arc::new(TicketMutex::with_wait(WaitMode::Park));
        let c = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let m = Arc::clone(&m);
                let c = Arc::clone(&c);
                schedcheck::spawn(move || {
                    m.lock();
                    let v = c.load(Ordering::SeqCst);
                    c.store(v + 1, Ordering::SeqCst);
                    m.unlock();
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(c.load(Ordering::SeqCst), 3, "ticket mutex admitted two");
    });
}

#[test]
fn bravo_revocation_handshake_survives_pct() {
    // The clean version of the scenario `tests/schedcheck_mutation.rs`
    // breaks: a fast-path reader backing out against a parked revoking
    // writer. With the wakeup in place no interleaving may deadlock.
    for seed in [0xB1A5, 0xB1A6] {
        schedcheck::check(&Config::pct(seed, 3).with_schedules(200), || {
            let lock = Arc::new(
                BravoLock::<DefaultRwLock>::with_parts(
                    DefaultRwLock::with_wait(WaitMode::Park),
                    TableHandle::private(1),
                    BiasPolicy::paper_default(),
                )
                .with_wait_mode(WaitMode::Park),
            );
            // Prime reader bias from the root before racing.
            lock.read_unlock(lock.read_lock());
            let reader = {
                let lock = Arc::clone(&lock);
                schedcheck::spawn(move || lock.read_unlock(lock.read_lock()))
            };
            let writer = {
                let lock = Arc::clone(&lock);
                schedcheck::spawn(move || {
                    lock.write_lock();
                    lock.write_unlock();
                })
            };
            reader.join();
            writer.join();
        });
    }
}

#[test]
fn park_handoff_never_loses_wakeups() {
    // Replays the exact protocol the parking-waiter PR pinned down: state
    // change, fence, wake. A dropped wakeup parks the waiter forever and
    // the checker reports the deadlock with a replay seed.
    for seed in [3, 17] {
        let report = schedcheck::check(&Config::pct(seed, 2).with_schedules(200), || {
            let strategy = WaitStrategy::park();
            let flag = Arc::new(AtomicU64::new(0));
            let key = 0x5eed_f1a6usize;
            let waiter = {
                let flag = Arc::clone(&flag);
                schedcheck::spawn(move || {
                    strategy.wait_until(key, || flag.load(Ordering::SeqCst) == 1);
                })
            };
            let setter = {
                let flag = Arc::clone(&flag);
                schedcheck::spawn(move || {
                    flag.store(1, Ordering::SeqCst);
                    strategy.notify_all(key);
                })
            };
            waiter.join();
            setter.join();
        });
        assert_eq!(report.schedules, 200);
    }
}

#[test]
fn futex_handoff_never_loses_wakeups() {
    // The futex twin of the park handoff case: the schedcheck virtual
    // futex makes wait/wake yield points, so every interleaving of the
    // announce/snapshot/recheck/sleep protocol against the generation bump
    // is explored. A lost wakeup sleeps the waiter forever and surfaces as
    // a reported deadlock.
    for seed in [3, 17] {
        let report = schedcheck::check(&Config::pct(seed, 2).with_schedules(200), || {
            let strategy = WaitStrategy::futex();
            let flag = Arc::new(AtomicU64::new(0));
            let key = 0x5eed_f1a6usize;
            let waiter = {
                let flag = Arc::clone(&flag);
                schedcheck::spawn(move || {
                    strategy.wait_until(key, || flag.load(Ordering::SeqCst) == 1);
                })
            };
            let setter = {
                let flag = Arc::clone(&flag);
                schedcheck::spawn(move || {
                    flag.store(1, Ordering::SeqCst);
                    strategy.notify_all(key);
                })
            };
            waiter.join();
            setter.join();
        });
        assert_eq!(report.schedules, 200);
    }
}

#[test]
fn futex_generation_wraparound_is_benign_under_the_checker() {
    // Litmus: park the eventcount's 32-bit generation right at u32::MAX so
    // the bump in every explored schedule crosses the wrap. The protocol
    // compares generations for equality only, so the wrap must be
    // unobservable — any schedule where a waiter keyed on a pre-wrap
    // generation misses a post-wrap wake would deadlock here.
    for seed in [5, 23] {
        let report = schedcheck::check(&Config::pct(seed, 2).with_schedules(200), || {
            let ec = Arc::new(bravo::FutexEventCount::with_generation(u32::MAX));
            let flag = Arc::new(AtomicU64::new(0));
            let waiter = {
                let ec = Arc::clone(&ec);
                let flag = Arc::clone(&flag);
                schedcheck::spawn(move || {
                    ec.wait_until(|| flag.load(Ordering::SeqCst) == 1);
                })
            };
            let setter = {
                let ec = Arc::clone(&ec);
                let flag = Arc::clone(&flag);
                schedcheck::spawn(move || {
                    flag.store(1, Ordering::SeqCst);
                    ec.notify_all();
                })
            };
            waiter.join();
            setter.join();
        });
        assert_eq!(report.schedules, 200);
    }
}

#[test]
fn wait_queue_wake_one_is_fifo_under_the_checker() {
    schedcheck::check(&Config::random_walk(11).with_schedules(64), || {
        let q = Arc::new(bravo::WaitQueue::new());
        let turn = Arc::new(AtomicU64::new(0));
        let order = Arc::new(bravo::sync::Mutex::new(Vec::new()));
        let mut waiters = Vec::new();
        for i in 0..2u64 {
            let q2 = Arc::clone(&q);
            let turn = Arc::clone(&turn);
            let order = Arc::clone(&order);
            waiters.push(schedcheck::spawn(move || {
                q2.wait_until(9, || turn.load(Ordering::SeqCst) > i);
                order.lock().unwrap().push(i);
            }));
            // Stagger registrations so queue order is deterministic; the
            // len() poll is an instrumented load, i.e. a yield point.
            while q.len() < (i + 1) as usize {
                std::hint::spin_loop();
            }
        }
        for next in 0..2u64 {
            turn.store(next + 1, Ordering::SeqCst);
            assert!(q.wake_one(9), "waiter {next} should be parked");
            while order.lock().unwrap().len() < (next + 1) as usize {
                std::hint::spin_loop();
            }
        }
        for w in waiters {
            w.join();
        }
        assert_eq!(*order.lock().unwrap(), vec![0, 1], "wake_one broke FIFO");
    });
}

#[test]
fn store_buffering_litmus_is_sequentially_consistent() {
    // Two threads store-then-load opposing variables. The serialized
    // scheduler implements sequential consistency, so (0, 0) must be
    // unreachable while the other three outcomes must all be discovered by
    // a complete exhaustive exploration.
    static OUTCOMES: std::sync::Mutex<Vec<(u64, u64)>> = std::sync::Mutex::new(Vec::new());
    OUTCOMES.lock().unwrap().clear();
    let report = schedcheck::run(&Config::exhaustive().with_schedules(10_000), || {
        let x = Arc::new(AtomicU64::new(0));
        let y = Arc::new(AtomicU64::new(0));
        let t1 = {
            let x = Arc::clone(&x);
            let y = Arc::clone(&y);
            schedcheck::spawn(move || {
                x.store(1, Ordering::SeqCst);
                y.load(Ordering::SeqCst)
            })
        };
        let t2 = {
            let x = Arc::clone(&x);
            let y = Arc::clone(&y);
            schedcheck::spawn(move || {
                y.store(1, Ordering::SeqCst);
                x.load(Ordering::SeqCst)
            })
        };
        let r1 = t1.join();
        let r2 = t2.join();
        OUTCOMES.lock().unwrap().push((r1, r2));
    })
    .unwrap_or_else(|f| panic!("litmus schedule failed: {f}"));
    assert!(
        report.complete,
        "exhaustive exploration did not finish in {} schedules",
        report.schedules
    );
    let outcomes: HashSet<(u64, u64)> = OUTCOMES.lock().unwrap().iter().copied().collect();
    assert!(
        !outcomes.contains(&(0, 0)),
        "store buffering observed under a sequentially consistent scheduler"
    );
    for want in [(0, 1), (1, 0), (1, 1)] {
        assert!(outcomes.contains(&want), "never explored outcome {want:?}");
    }
}

#[test]
fn racy_increment_is_caught_and_replays_byte_for_byte() {
    // A deliberate exclusion bug: two unsynchronized load-then-store
    // increments. The checker must find the lost update, and its seed token
    // must reproduce the identical schedule (same trace, same step).
    let racy = || {
        let c = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&c);
                schedcheck::spawn(move || {
                    let v = c.load(Ordering::SeqCst);
                    c.store(v + 1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
    };
    let failure = schedcheck::run(&Config::random_walk(1).with_schedules(256), racy)
        .expect_err("the lost update must be found");
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(
        failure.seed_token.starts_with("rw:"),
        "unexpected token {}",
        failure.seed_token
    );
    let replay1 = schedcheck::run(&Config::replay(&failure.seed_token), racy)
        .expect_err("replay must reproduce the failure");
    let replay2 = schedcheck::run(&Config::replay(&failure.seed_token), racy)
        .expect_err("replay must reproduce the failure");
    assert_eq!(replay1.kind, FailureKind::Panic);
    assert_eq!(
        replay1.trace, failure.trace,
        "replay diverged from original"
    );
    assert_eq!(replay1.trace, replay2.trace, "two replays diverged");
    assert_eq!(replay1.step, failure.step);
}
