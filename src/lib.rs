//! Root crate of the BRAVO reproduction workspace.
//!
//! This crate re-exports the public surface of every workspace member so
//! that the examples under `examples/` and the cross-crate integration tests
//! under `tests/` have a single import root. Applications embedding BRAVO
//! should depend on the individual crates (`bravo`, `rwlocks`, …) directly.
//!
//! # Map of the workspace
//!
//! | Crate | Contents |
//! |-------|----------|
//! | [`bravo`] | the BRAVO transformation: visible readers table, bias policy, `BravoLock`, `BravoRwLock`, BRAVO-2D |
//! | [`rwlocks`] | the lock zoo: BA (PF-Q), PF-T, Cohort-RW, Per-CPU, pthread-like, fair, plus mutex substrates |
//! | [`topology`] | simulated machine topology and cache geometry |
//! | [`rwsem`] | Linux rwsem simulation and the BRAVO kernel patch |
//! | [`kernelsim`] | locktorture, the simulated mm/VMA subsystem, will-it-scale drivers |
//! | [`kvstore`] | RocksDB-like memtable, persistent-cache hash table, mini DB |
//! | [`mapreduce`] | Metis-like MapReduce with the `wc` and `wrmem` applications |
//! | [`workloads`] | Figure 1–4 workload generators and the measurement harness |
//! | [`server`] | `bravod`: the TCP front over the mini DB plus the open-loop load generator |
//! | [`report`] | results post-processing: CSV/`BENCH_locks.json` readers, SVG figures, `RESULTS.md` |

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub use bravo;
pub use kernelsim;
pub use kvstore;
pub use mapreduce;
pub use report;
pub use rwlocks;
pub use rwsem;
pub use server;
pub use topology;
pub use workloads;

/// The paper this workspace reproduces.
pub const PAPER: &str =
    "BRAVO -- Biased Locking for Reader-Writer Locks, Dice & Kogan, USENIX ATC 2019";

#[cfg(test)]
mod tests {
    #[test]
    fn reexports_resolve() {
        // Touch one item from each re-exported crate so a broken re-export
        // fails this crate's own test run, not only downstream users.
        let _ = crate::bravo::DEFAULT_TABLE_SIZE;
        let _ = crate::rwlocks::LockKind::all();
        let _ = crate::topology::SECTOR;
        let _ = crate::rwsem::KernelVariant::all();
        let _ = crate::kernelsim::PAGE_SIZE;
        let _ = crate::kvstore::Db::open(crate::rwlocks::LockKind::Ba);
        let _ = crate::mapreduce::generate_text(16, 1);
        let _ = crate::workloads::paper_thread_series(4);
        let _ = crate::server::MAX_FRAME_LEN;
        let _ = crate::report::svg::SERIES_COLORS;
        assert!(crate::PAPER.contains("BRAVO"));
    }
}
